"""Declarative fault plans: what breaks, when, and for how long.

A :class:`FaultPlan` is a named, seeded list of :class:`FaultEvent`
entries scheduled on the simulation clock.  Plans are data — they can
be written in YAML/JSON, round-tripped through :meth:`FaultPlan.to_dict`
and built deterministically from a seed by :func:`build_preset`, so a
chaos scenario is exactly reproducible run-to-run.

Link faults target a GPU↔GPU NVLink *pair*: a physical NVLink failing
takes out both directed links.  GPU faults target one GPU.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology.machine import MachineTopology

try:  # pragma: no cover - exercised implicitly by YAML plan tests
    import yaml as _yaml
except ImportError:  # pragma: no cover - the image bakes pyyaml in
    _yaml = None


class FaultPlanError(ValueError):
    """A fault plan is malformed (unknown kind, missing target, ...)."""


class FaultKind(str, Enum):
    """The five fault models of the robustness subsystem."""

    #: NVLink drops to a fraction of its rated bandwidth (e.g.
    #: PCIe-class rates); ``magnitude`` is the bandwidth scale in (0, 1).
    LINK_DEGRADE = "link-degrade"
    #: Transient blackout: the link is down for ``duration`` seconds,
    #: in-flight transfers are lost, then it comes back.
    LINK_BLACKOUT = "link-blackout"
    #: Permanent link failure: down forever, routes are invalidated.
    LINK_FAIL = "link-fail"
    #: GPU compute slowdown; ``magnitude`` > 1 is the slowdown factor.
    GPU_STRAGGLER = "gpu-straggler"
    #: GPU crash: every link touching the GPU fails permanently and,
    #: with join-level recovery armed, its compute state is lost too.
    GPU_CRASH = "gpu-crash"
    #: Silent payload corruption: packets crossing the link have their
    #: payload bit-flipped in flight (seeded); ``magnitude`` in (0, 1]
    #: is the fraction of packets affected.
    PAYLOAD_CORRUPT = "payload-corrupt"
    #: Packet duplication: the link delivers some packets twice;
    #: ``magnitude`` in (0, 1] is the fraction of packets duplicated.
    PACKET_DUP = "packet-dup"
    #: Packet reordering: some packets are held back and arrive late,
    #: out of sequence order; ``magnitude`` in (0, 1] is the fraction
    #: of packets delayed.
    PACKET_REORDER = "packet-reorder"


#: Transport-corruption kinds: link-targeted, duration-windowed, with
#: ``magnitude`` as the per-packet affect rate in (0, 1].
CORRUPTION_KINDS = frozenset(
    {FaultKind.PAYLOAD_CORRUPT, FaultKind.PACKET_DUP, FaultKind.PACKET_REORDER}
)
LINK_KINDS = (
    frozenset({FaultKind.LINK_DEGRADE, FaultKind.LINK_BLACKOUT, FaultKind.LINK_FAIL})
    | CORRUPTION_KINDS
)
GPU_KINDS = frozenset({FaultKind.GPU_STRAGGLER, FaultKind.GPU_CRASH})
#: Kinds that must not carry a duration (they never heal).
PERMANENT_KINDS = frozenset({FaultKind.LINK_FAIL, FaultKind.GPU_CRASH})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``src``/``dst`` name the GPU pair of a link fault; ``gpu`` the
    target of a GPU fault.  ``duration=None`` means permanent.
    """

    kind: FaultKind
    at: float
    src: int | None = None
    dst: int | None = None
    gpu: int | None = None
    duration: float | None = None
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultPlanError(f"fault time must be >= 0, got {self.at}")
        if self.kind in LINK_KINDS:
            if self.src is None or self.dst is None or self.src == self.dst:
                raise FaultPlanError(
                    f"{self.kind.value} needs distinct src/dst GPUs, got "
                    f"src={self.src} dst={self.dst}"
                )
        if self.kind in GPU_KINDS and self.gpu is None:
            raise FaultPlanError(f"{self.kind.value} needs a target gpu")
        if self.kind in PERMANENT_KINDS:
            if self.duration is not None:
                raise FaultPlanError(
                    f"{self.kind.value} is permanent; duration not allowed"
                )
        elif self.duration is None or self.duration <= 0:
            raise FaultPlanError(
                f"{self.kind.value} needs a positive duration, got "
                f"{self.duration}"
            )
        if self.kind is FaultKind.LINK_DEGRADE and not 0 < self.magnitude < 1:
            raise FaultPlanError(
                "link-degrade magnitude is the bandwidth scale and must be "
                f"in (0, 1), got {self.magnitude}"
            )
        if self.kind is FaultKind.GPU_STRAGGLER and self.magnitude <= 1:
            raise FaultPlanError(
                "gpu-straggler magnitude is the slowdown factor and must "
                f"be > 1, got {self.magnitude}"
            )
        if self.kind in CORRUPTION_KINDS and not 0 < self.magnitude <= 1:
            raise FaultPlanError(
                f"{self.kind.value} magnitude is the fraction of packets "
                f"affected and must be in (0, 1], got {self.magnitude}"
            )

    @property
    def ends_at(self) -> float | None:
        return None if self.duration is None else self.at + self.duration

    def to_dict(self) -> dict:
        entry: dict = {"kind": self.kind.value, "at": self.at}
        for key in ("src", "dst", "gpu", "duration"):
            value = getattr(self, key)
            if value is not None:
                entry[key] = value
        if (
            self.kind in (FaultKind.LINK_DEGRADE, FaultKind.GPU_STRAGGLER)
            or self.kind in CORRUPTION_KINDS
        ):
            entry["magnitude"] = self.magnitude
        return entry

    @staticmethod
    def from_dict(entry: dict) -> "FaultEvent":
        if not isinstance(entry, dict):
            raise FaultPlanError(f"fault entry must be a mapping, got {entry!r}")
        data = dict(entry)
        try:
            kind = FaultKind(data.pop("kind"))
        except (KeyError, ValueError) as exc:
            known = ", ".join(k.value for k in FaultKind)
            raise FaultPlanError(
                f"fault entry {entry!r} needs a 'kind' among: {known}"
            ) from exc
        try:
            at = float(data.pop("at"))
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(
                f"fault entry {entry!r} needs a numeric 'at' time"
            ) from exc
        allowed = {"src", "dst", "gpu", "duration", "magnitude"}
        unknown = set(data) - allowed
        if unknown:
            raise FaultPlanError(
                f"unknown fault fields {sorted(unknown)} in {entry!r}"
            )
        kwargs: dict = {}
        for key in ("src", "dst", "gpu"):
            if key in data:
                kwargs[key] = int(data[key])
        if "duration" in data and data["duration"] is not None:
            kwargs["duration"] = float(data["duration"])
        if "magnitude" in data:
            kwargs["magnitude"] = float(data["magnitude"])
        return FaultEvent(kind=kind, at=at, **kwargs)


#: Retry-policy knobs a plan may bake in (field names of
#: :class:`~repro.sim.recovery.RetryPolicy`).  Everything but
#: ``max_attempts`` is a float.
RETRY_FIELDS = (
    "max_attempts",
    "base_delay",
    "backoff",
    "max_delay",
    "acquire_timeout",
    "host_bandwidth",
    "host_latency",
    "jitter",
)


def _normalize_retry(retry) -> tuple[tuple[str, float], ...]:
    """Coerce a retry override mapping into a hashable sorted tuple."""
    items = dict(retry)
    unknown = set(items) - set(RETRY_FIELDS)
    if unknown:
        known = ", ".join(RETRY_FIELDS)
        raise FaultPlanError(
            f"unknown retry fields {sorted(unknown)}; choose among: {known}"
        )
    normalized = []
    for key in sorted(items):
        try:
            value = int(items[key]) if key == "max_attempts" else float(items[key])
        except (TypeError, ValueError) as exc:
            raise FaultPlanError(
                f"retry field {key!r} must be numeric, got {items[key]!r}"
            ) from exc
        normalized.append((key, value))
    return tuple(normalized)


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered schedule of faults.

    ``retry`` optionally bakes retry-policy overrides into the plan
    (see :data:`RETRY_FIELDS`), so a chaos scenario file fully
    describes the run; CLI flags take precedence over plan values.
    """

    name: str
    events: tuple[FaultEvent, ...]
    seed: int = 0
    retry: "tuple[tuple[str, float], ...] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda e: e.at))
        )
        if self.retry is not None:
            object.__setattr__(self, "retry", _normalize_retry(self.retry))

    def __len__(self) -> int:
        return len(self.events)

    @property
    def retry_kwargs(self) -> dict:
        """The retry overrides as keyword arguments (empty if unset)."""
        return dict(self.retry) if self.retry is not None else {}

    def validate(
        self,
        machine: "MachineTopology",
        gpu_ids: "tuple[int, ...] | None" = None,
        *,
        queries: "dict[str, tuple[int, ...]] | None" = None,
    ) -> "FaultPlan":
        """Check every event against the actual machine at load time.

        A plan naming a GPU or link that does not exist on the selected
        machine (or outside the ``gpu_ids`` cut) raises
        :class:`FaultPlanError` naming the offending target here, not a
        ``KeyError`` in the middle of a simulated run.  Returns the
        plan, so loaders can chain ``FaultPlan.from_file(p).validate(m)``.

        ``queries`` is the serving context: a mapping of admitted query
        id to the GPU set that query runs on.  When given, participants
        default to the union of every query's GPUs, and each event must
        be *reachable* by at least one admitted query — a GPU fault
        must hit a GPU some query runs on, and a link fault needs one
        query whose GPU set contains both endpoints (otherwise no
        tenant's traffic can ever cross that link).  Violations name
        the offending event and the admitted queries, so a bad serve
        chaos plan fails before any query is admitted.
        """
        if queries is not None and gpu_ids is None:
            union: set[int] = set()
            for query_gpus in queries.values():
                union.update(query_gpus)
            gpu_ids = tuple(sorted(union))
        participants = tuple(sorted(gpu_ids)) if gpu_ids else machine.gpu_ids
        unknown = set(participants) - set(machine.gpu_ids)
        if unknown:
            raise FaultPlanError(
                f"plan {self.name!r}: GPUs {sorted(unknown)} are not on "
                f"this machine (has {list(machine.gpu_ids)})"
            )
        member = set(participants)
        for event in self.events:
            if event.kind in GPU_KINDS:
                if event.gpu not in member:
                    raise FaultPlanError(
                        f"plan {self.name!r}: {event.kind.value} at "
                        f"t={event.at} targets gpu{event.gpu}, which is not "
                        f"among the participating GPUs {list(participants)}"
                    )
            else:
                bad = [g for g in (event.src, event.dst) if g not in member]
                if bad:
                    raise FaultPlanError(
                        f"plan {self.name!r}: {event.kind.value} at "
                        f"t={event.at} targets "
                        f"gpu{event.src}<->gpu{event.dst}, but "
                        f"{', '.join(f'gpu{g}' for g in bad)} is not among "
                        f"the participating GPUs {list(participants)}"
                    )
                if (
                    machine.nvlink_between(event.src, event.dst) is None
                    and machine.nvlink_between(event.dst, event.src) is None
                ):
                    raise FaultPlanError(
                        f"plan {self.name!r}: {event.kind.value} at "
                        f"t={event.at} targets "
                        f"gpu{event.src}<->gpu{event.dst}, but no NVLink "
                        f"connects them on this machine"
                    )
        if queries is not None:
            self._validate_serve_reach(queries)
        self._validate_permanent_conflicts()
        return self

    def _validate_serve_reach(
        self, queries: "dict[str, tuple[int, ...]]"
    ) -> None:
        """Reject events no admitted query can reach (serving context)."""
        admitted = {
            name: frozenset(query_gpus)
            for name, query_gpus in queries.items()
        }
        roster = ", ".join(
            f"{name}={sorted(gpus)}" for name, gpus in sorted(admitted.items())
        ) or "(none)"
        for event in self.events:
            if event.kind in GPU_KINDS:
                if not any(event.gpu in gpus for gpus in admitted.values()):
                    raise FaultPlanError(
                        f"plan {self.name!r}: {event.kind.value} at "
                        f"t={event.at} targets gpu{event.gpu}, which no "
                        f"admitted query runs on (admitted: {roster})"
                    )
            else:
                pair = {event.src, event.dst}
                if not any(pair <= gpus for gpus in admitted.values()):
                    raise FaultPlanError(
                        f"plan {self.name!r}: {event.kind.value} at "
                        f"t={event.at} targets "
                        f"gpu{event.src}<->gpu{event.dst}, a link no "
                        f"admitted query's traffic can cross (admitted: "
                        f"{roster})"
                    )

    def _validate_permanent_conflicts(self) -> None:
        """Reject events targeting something a permanent fault removed.

        A ``link-fail`` kills its link forever and a ``gpu-crash``
        kills every link touching the GPU: any later event aimed at
        that target is at best a no-op and at worst a runtime
        ``KeyError``.  Walk the (time-sorted) schedule and name *both*
        events in the error so the conflict is diagnosable from the
        plan file alone.
        """

        def describe(event: FaultEvent) -> str:
            if event.kind in GPU_KINDS:
                target = f"gpu{event.gpu}"
            else:
                target = f"gpu{event.src}<->gpu{event.dst}"
            return f"{event.kind.value} at t={event.at} on {target}"

        crashed: dict[int, FaultEvent] = {}
        failed_pairs: dict[frozenset, FaultEvent] = {}
        for event in self.events:
            if event.kind in GPU_KINDS:
                earlier = crashed.get(event.gpu)
                if earlier is not None:
                    raise FaultPlanError(
                        f"plan {self.name!r}: {describe(event)} targets a "
                        f"GPU already removed by {describe(earlier)}"
                    )
                if event.kind is FaultKind.GPU_CRASH:
                    crashed[event.gpu] = event
            else:
                pair = frozenset((event.src, event.dst))
                earlier = failed_pairs.get(pair)
                if earlier is None:
                    for endpoint in (event.src, event.dst):
                        if endpoint in crashed:
                            earlier = crashed[endpoint]
                            break
                if earlier is not None:
                    raise FaultPlanError(
                        f"plan {self.name!r}: {describe(event)} targets a "
                        f"link already removed by {describe(earlier)}"
                    )
                if event.kind is FaultKind.LINK_FAIL:
                    failed_pairs[pair] = event

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }
        if self.retry is not None:
            data["retry"] = dict(self.retry)
        return data

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be a mapping, got {data!r}")
        events = data.get("events")
        if not isinstance(events, list) or not events:
            raise FaultPlanError("fault plan needs a non-empty 'events' list")
        retry = data.get("retry")
        if retry is not None and not isinstance(retry, dict):
            raise FaultPlanError(
                f"fault plan 'retry' must be a mapping, got {retry!r}"
            )
        return FaultPlan(
            name=str(data.get("name", "unnamed")),
            seed=int(data.get("seed", 0)),
            events=tuple(FaultEvent.from_dict(entry) for entry in events),
            retry=tuple(sorted(retry.items())) if retry else None,
        )

    @staticmethod
    def from_file(path: str | Path) -> "FaultPlan":
        """Load a plan from a YAML or JSON file (by extension)."""
        path = Path(path)
        text = path.read_text()
        if path.suffix in (".yaml", ".yml"):
            if _yaml is None:
                raise FaultPlanError(
                    "pyyaml is not installed; use a JSON fault plan instead"
                )
            data = _yaml.safe_load(text)
        else:
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise FaultPlanError(f"{path} is not valid JSON: {exc}") from exc
        return FaultPlan.from_dict(data)


#: Built-in chaos scenarios (see :func:`build_preset`).
PRESET_NAMES = (
    "nvlink-brownout",
    "gpu-straggler",
    "link-flap",
    "link-blackout",
    "nvlink-cut",
    "gpu-crash",
    "gpu-crash-x2",
    "payload-corrupt",
    "packet-dup",
    "packet-reorder",
)


def _nvlink_pairs(
    machine: "MachineTopology",
    gpu_ids: "tuple[int, ...] | None" = None,
) -> list[tuple[int, int]]:
    pairs = sorted(
        {
            (min(g, n), max(g, n))
            for g in machine.gpu_ids
            for n in machine.nvlink_neighbors(g)
        }
    )
    if gpu_ids is not None:
        participants = set(gpu_ids)
        scoped = [
            pair
            for pair in pairs
            if pair[0] in participants and pair[1] in participants
        ]
        # A subset with no internal NVLink (e.g. a staged pair) falls
        # back to machine-wide links so the preset still means something.
        pairs = scoped or pairs
    if not pairs:
        raise FaultPlanError(
            "machine has no GPU-GPU NVLinks; link presets need at least one"
        )
    return pairs


def build_preset(
    name: str,
    machine: "MachineTopology",
    horizon: float,
    seed: int = 0,
    gpu_ids: "tuple[int, ...] | None" = None,
) -> FaultPlan:
    """Materialize a built-in chaos scenario for one machine and run.

    ``horizon`` is the expected healthy-run duration in seconds: preset
    fault times are fractions of it, so the same scenario stresses a
    10 ms toy shuffle and a 10 s production-sized one alike.  With
    ``gpu_ids`` the targets are drawn from the participating GPUs only.
    The same ``(name, machine, horizon, seed, gpu_ids)`` always yields
    the same plan — the seed mix uses crc32, not ``hash()``, so plans
    reproduce across interpreter runs regardless of PYTHONHASHSEED.
    """
    if horizon <= 0:
        raise FaultPlanError(f"horizon must be positive, got {horizon}")
    targets = tuple(sorted(gpu_ids)) if gpu_ids else machine.gpu_ids
    unknown = set(targets) - set(machine.gpu_ids)
    if unknown:
        raise FaultPlanError(f"unknown GPUs for preset: {sorted(unknown)}")
    rng = random.Random(zlib.crc32(name.encode("utf-8")) ^ seed)
    events: list[FaultEvent] = []
    if name == "nvlink-brownout":
        # A third of the NVLinks sag to PCIe-class bandwidth for most
        # of the run — the regime where ARM must re-route around them.
        pairs = _nvlink_pairs(machine, targets)
        count = max(1, len(pairs) // 3)
        for src, dst in rng.sample(pairs, count):
            events.append(
                FaultEvent(
                    kind=FaultKind.LINK_DEGRADE,
                    at=0.05 * horizon,
                    src=src,
                    dst=dst,
                    duration=0.85 * horizon,
                    magnitude=0.12,
                )
            )
    elif name == "gpu-straggler":
        gpu = rng.choice(targets)
        events.append(
            FaultEvent(
                kind=FaultKind.GPU_STRAGGLER,
                at=0.1 * horizon,
                gpu=gpu,
                duration=0.7 * horizon,
                magnitude=4.0,
            )
        )
    elif name == "link-flap":
        src, dst = rng.choice(_nvlink_pairs(machine, targets))
        at = 0.05 * horizon
        for _ in range(4):
            blackout = rng.uniform(0.03, 0.08) * horizon
            events.append(
                FaultEvent(
                    kind=FaultKind.LINK_BLACKOUT,
                    at=at,
                    src=src,
                    dst=dst,
                    duration=blackout,
                )
            )
            at += blackout + rng.uniform(0.08, 0.15) * horizon
    elif name == "link-blackout":
        # One sustained outage on a single NVLink: down for ~30% of the
        # run, then restored.  The canonical telemetry-smoke scenario —
        # one clean link.down/link.up pair and one critical alert.
        src, dst = rng.choice(_nvlink_pairs(machine, targets))
        events.append(
            FaultEvent(
                kind=FaultKind.LINK_BLACKOUT,
                at=0.2 * horizon,
                src=src,
                dst=dst,
                duration=0.3 * horizon,
            )
        )
    elif name == "nvlink-cut":
        src, dst = rng.choice(_nvlink_pairs(machine, targets))
        events.append(
            FaultEvent(
                kind=FaultKind.LINK_FAIL, at=0.25 * horizon, src=src, dst=dst
            )
        )
    elif name == "gpu-crash":
        gpu = rng.choice(targets)
        events.append(
            FaultEvent(kind=FaultKind.GPU_CRASH, at=0.4 * horizon, gpu=gpu)
        )
    elif name == "gpu-crash-x2":
        # Two GPUs die within one heartbeat epoch of each other: the
        # second crash lands while the first recovery is in flight, so
        # reassignment must survive targeting a soon-to-be-dead GPU.
        if len(targets) < 3:
            raise FaultPlanError(
                "gpu-crash-x2 needs at least three participating GPUs "
                "(two crash, at least one must survive)"
            )
        first, second = rng.sample(list(targets), 2)
        events.append(
            FaultEvent(kind=FaultKind.GPU_CRASH, at=0.35 * horizon, gpu=first)
        )
        events.append(
            FaultEvent(kind=FaultKind.GPU_CRASH, at=0.4 * horizon, gpu=second)
        )
    elif name == "payload-corrupt":
        # One NVLink silently flips payload bits on a third of its
        # packets for most of the run — the fault digest equality
        # exists to catch.
        src, dst = rng.choice(_nvlink_pairs(machine, targets))
        events.append(
            FaultEvent(
                kind=FaultKind.PAYLOAD_CORRUPT,
                at=0.1 * horizon,
                src=src,
                dst=dst,
                duration=0.7 * horizon,
                magnitude=0.35,
            )
        )
    elif name == "packet-dup":
        # One NVLink delivers a quarter of its packets twice.
        src, dst = rng.choice(_nvlink_pairs(machine, targets))
        events.append(
            FaultEvent(
                kind=FaultKind.PACKET_DUP,
                at=0.1 * horizon,
                src=src,
                dst=dst,
                duration=0.6 * horizon,
                magnitude=0.25,
            )
        )
    elif name == "packet-reorder":
        # One NVLink holds back a quarter of its packets so they land
        # late and out of sequence order.
        src, dst = rng.choice(_nvlink_pairs(machine, targets))
        events.append(
            FaultEvent(
                kind=FaultKind.PACKET_REORDER,
                at=0.1 * horizon,
                src=src,
                dst=dst,
                duration=0.6 * horizon,
                magnitude=0.25,
            )
        )
    else:
        known = ", ".join(PRESET_NAMES)
        raise FaultPlanError(f"unknown preset {name!r}; choose one of: {known}")
    return FaultPlan(name=name, seed=seed, events=tuple(events))
