"""The chaos harness: run a join under faults and grade the damage.

:func:`run_chaos` executes the same workload twice — once healthy,
once under a :class:`FaultPlan` — with the same policy and config, then
checks that the faulted run still *completed with the correct join
result* (no hang, no silent data loss) and reports the throughput it
retained.  Presets are materialized against the healthy run's measured
distribution time, so `nvlink-brownout` stresses a 10 ms toy shuffle
and a 10 s production-sized one in the same proportions.

Both runs are forced to materialize their match sets so correctness is
graded on the order-independent sha256 digest of the (r_id, s_id)
pairs — the headline guarantee for GPU-crash scenarios is that the
faulted digest equals the healthy one byte-for-byte even after losing
up to N−1 GPUs mid-join.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.config import MGJoinConfig
from repro.core.mgjoin import JoinResult, MGJoin
from repro.faults.plan import (
    CORRUPTION_KINDS,
    FaultPlan,
    FaultPlanError,
    PRESET_NAMES,
    build_preset,
)
from repro.sim.recovery import RecoveryConfig, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.relation import JoinWorkload
    from repro.obs import Observer
    from repro.routing.base import RoutingPolicy
    from repro.sim.integrity import IntegrityStats
    from repro.topology.machine import MachineTopology


class ChaosError(RuntimeError):
    """The faulted run broke an invariant (wrong result, data loss)."""


@dataclass
class ChaosReport:
    """Outcome of one chaos scenario."""

    plan: FaultPlan
    healthy: JoinResult
    faulted: JoinResult

    @property
    def integrity(self) -> "IntegrityStats | None":
        """Verified-transport stats from the faulted run, if active."""
        report = self.faulted.shuffle_report
        return None if report is None else report.integrity

    @property
    def silent_corruption_detected(self) -> bool:
        """Did the unverified transport deliver corrupt/duplicate data?

        Only meaningful with verification *off*: the end-to-end audit
        found deliveries whose payload checksum was stale or whose uid
        was already seen.  With verification on, those packets were
        repaired in-flight and this stays ``False``.
        """
        stats = self.integrity
        return (
            stats is not None
            and not stats.verified
            and stats.silent_corruption
        )

    @property
    def correct(self) -> bool:
        """Did the faulted join produce the exact healthy result?

        Graded on total matches and, when materialized, on the
        canonical match-set digest.  The per-GPU distribution must also
        match — except when join-level recovery reassigned partitions,
        where survivors legitimately absorb the dead GPUs' shares and
        only the *set* of matches has to be identical.  A run where the
        integrity audit caught silent corruption is never correct, even
        if the (timing-model) digest happens to agree.
        """
        if self.silent_corruption_detected:
            return False
        if self.faulted.matches_logical != self.healthy.matches_logical:
            return False
        if (
            self.faulted.match_digest is not None
            and self.healthy.match_digest is not None
            and self.faulted.match_digest != self.healthy.match_digest
        ):
            return False
        if self.faulted.recovery is None:
            return self.faulted.per_gpu_matches == self.healthy.per_gpu_matches
        return True

    @property
    def throughput_retention(self) -> float:
        """Faulted throughput as a fraction of healthy throughput."""
        if self.healthy.throughput <= 0:
            return 0.0
        return self.faulted.throughput / self.healthy.throughput

    @property
    def fault_counters(self) -> dict[str, int]:
        report = self.faulted.shuffle_report
        if report is None:
            return {}
        counters = {
            "faults_injected": report.faults_injected,
            "packet_retries": report.packet_retries,
            "packet_reroutes": report.packet_reroutes,
            "packet_fallbacks": report.packet_fallbacks,
            "packets_recovered": report.packets_recovered,
        }
        if report.integrity is not None:
            counters.update(
                checksum_failures=report.integrity.checksum_failures,
                retransmits=report.integrity.retransmits,
                dup_dropped=report.integrity.dup_dropped,
            )
        return counters

    def summary_lines(self) -> list[str]:
        lines = [
            f"chaos scenario : {self.plan.name} "
            f"({len(self.plan)} fault(s), seed {self.plan.seed})",
            f"correctness    : "
            f"{'OK' if self.correct else 'MISMATCH'} "
            f"({self.faulted.matches_logical} matches)",
            f"healthy        : {self.healthy.total_time * 1e3:.3f} ms "
            f"({self.healthy.throughput / 1e9:.2f} Gtuples/s)",
            f"faulted        : {self.faulted.total_time * 1e3:.3f} ms "
            f"({self.faulted.throughput / 1e9:.2f} Gtuples/s)",
            f"retention      : {self.throughput_retention * 100:.1f}% "
            f"of healthy throughput",
        ]
        for name, value in self.fault_counters.items():
            lines.append(f"{name:<15}: {value}")
        stats = self.integrity
        if stats is not None:
            mode = "verified" if stats.verified else "audit-only"
            lines.append(f"transport      : {mode} integrity layer active")
            if self.silent_corruption_detected:
                lines.append(
                    f"  SILENT CORRUPTION: {stats.corrupt_delivered} corrupt "
                    f"and {stats.dup_delivered} duplicate deliveries reached "
                    f"destinations unchecked"
                )
        if self.faulted.recovery is not None:
            lines.append("degraded mode  : join-level crash recovery engaged")
            lines.extend(
                f"  {line}" for line in self.faulted.recovery.summary_lines()
            )
        return lines


def resolve_plan(
    scenario: "str | FaultPlan",
    machine: "MachineTopology",
    horizon: float,
    seed: int = 0,
    gpu_ids: "tuple[int, ...] | None" = None,
) -> FaultPlan:
    """Turn a preset name or a ready plan into a concrete, valid plan.

    Explicit plans are validated against the machine and GPU cut here,
    so a plan naming a nonexistent GPU or link fails fast with a
    :class:`FaultPlanError` instead of a mid-run ``KeyError``.
    """
    if isinstance(scenario, FaultPlan):
        return scenario.validate(machine, gpu_ids)
    if scenario in PRESET_NAMES:
        return build_preset(scenario, machine, horizon, seed, gpu_ids)
    known = ", ".join(PRESET_NAMES)
    raise FaultPlanError(f"unknown preset {scenario!r}; choose one of: {known}")


def run_chaos(
    machine: "MachineTopology",
    workload: "JoinWorkload",
    scenario: "str | FaultPlan",
    *,
    config: "MGJoinConfig | None" = None,
    policy: "RoutingPolicy | None" = None,
    seed: int = 0,
    observer: "Observer | None" = None,
    strict: bool = True,
    retry: RetryPolicy | None = None,
    recovery: RecoveryConfig | None = None,
    verify: bool | None = None,
    healthy: JoinResult | None = None,
) -> ChaosReport:
    """Run one chaos scenario; the observer sees the *faulted* run.

    With ``strict`` (the default) a wrong join result raises
    :class:`ChaosError`; passing ``strict=False`` returns the report for
    the caller to grade (used by tests that assert on the failure mode).

    ``retry`` overrides the faulted run's retry/backoff/fallback knobs;
    when ``None``, overrides baked into the plan's ``retry`` section
    apply, and otherwise :class:`RetryPolicy` defaults.  ``recovery``
    sets the heartbeat/checkpoint knobs for join-level crash recovery.

    ``verify`` controls the verified-transport layer for the faulted
    run: ``True`` forces checksum/NACK/dedup protection on, ``False``
    forces it off (the integrity layer still *audits* and the report
    flags silent corruption), and ``None`` (default) enables it exactly
    when the plan contains corruption-class faults — so existing
    loss/slowdown scenarios keep their historical digests.

    ``healthy`` supplies a precomputed baseline (same machine, workload,
    config, and policy) so batch callers like the chaos fuzzer pay for
    the healthy run once instead of once per plan.
    """
    # Materialize the match sets so correctness is digest-graded.
    config = replace(config or MGJoinConfig(), materialize=True)
    if healthy is None:
        healthy = MGJoin(machine, config=config, policy=policy).run(workload)
    if healthy.shuffle_report is None:
        raise ChaosError(
            "chaos needs a multi-GPU workload that actually shuffles data"
        )
    horizon = healthy.shuffle_report.elapsed
    plan = resolve_plan(scenario, machine, horizon, seed, workload.gpu_ids)
    if retry is None and plan.retry is not None:
        retry = RetryPolicy(**plan.retry_kwargs)
    if verify is None:
        verify = any(event.kind in CORRUPTION_KINDS for event in plan.events)
    faulted_config = replace(
        config, shuffle=replace(config.shuffle, verify_transport=verify)
    )
    faulted = MGJoin(
        machine,
        config=faulted_config,
        policy=policy,
        observer=observer,
        faults=plan,
        retry=retry,
        recovery=recovery,
    ).run(workload)
    report = ChaosReport(plan=plan, healthy=healthy, faulted=faulted)
    if strict and not report.correct:
        if report.silent_corruption_detected:
            stats = report.integrity
            raise ChaosError(
                f"chaos scenario {plan.name!r} silently corrupted the "
                f"shuffle: {stats.corrupt_delivered} corrupt and "
                f"{stats.dup_delivered} duplicate deliveries went "
                f"undetected by the unverified transport"
            )
        raise ChaosError(
            f"chaos scenario {plan.name!r} corrupted the join: "
            f"{report.faulted.matches_logical} matches vs "
            f"{report.healthy.matches_logical} healthy"
        )
    return report
