"""Executes a :class:`FaultPlan` against a running shuffle simulation.

The injector is bound to the live simulation objects by
:class:`~repro.sim.shuffle.ShuffleSimulator` and schedules one callback
per fault (plus one per recovery) on the engine clock.  Faults act by:

* scaling :attr:`LinkChannel.bandwidth_scale` (degradation),
* toggling :meth:`LinkChannel.take_down` / :meth:`bring_up` (blackouts
  and permanent failures — in-flight transfers are lost),
* invalidating routes via :meth:`RouteEnumerator.fail_link` (permanent
  failures and GPU crashes),
* slowing a GPU's injection/consumption rates (stragglers),
* installing a :class:`~repro.sim.integrity.PacketTamperer` on a link's
  directed channels (payload corruption, duplication, reordering) —
  applied by the sending GPU, observed by the verified-transport layer.

Every health change is surfaced two ways, mirroring reality: the owning
GPU sees its own port's :meth:`queue_delay` penalty immediately, while
every other GPU learns of it through
:meth:`LinkStateBoard.publish_fault` — the same propagation-delay
broadcast path queue-delay changes ride.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.plan import (
    CORRUPTION_KINDS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultPlanError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observer
    from repro.sim.engine import Engine
    from repro.sim.gpusim import GpuNode
    from repro.sim.integrity import TransportIntegrity
    from repro.sim.linksim import LinkChannel, LinkStateBoard
    from repro.sim.recovery import CrashCoordinator
    from repro.topology.machine import MachineTopology
    from repro.topology.routes import RouteEnumerator

#: Queue-delay penalty (seconds) advertised for a down link.  Finite —
#: the ARM metric must still produce comparable numbers — but orders of
#: magnitude above any real queueing delay, so every policy that looks
#: at congestion steers clear of a dead link once the broadcast lands.
LINK_DOWN_PENALTY = 0.1

#: Span/instant track for fault-window visualization in Chrome traces.
FAULT_TRACK = "faults"


class FaultInjector:
    """Schedules and applies one plan's faults on the engine clock."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.faults_injected = 0
        self._engine: "Engine | None" = None
        self._links: dict[int, "LinkChannel"] = {}
        self._board: "LinkStateBoard | None" = None
        self._machine: "MachineTopology | None" = None
        self._packet_size = 0
        self._observer: "Observer | None" = None
        self._integrity: "TransportIntegrity | None" = None
        #: Recovery scopes the faults fan out to.  A classic run has
        #: exactly one (its nodes/enumerator/coordinator); the serving
        #: layer registers one per admitted query so a shared-fabric
        #: fault reaches every affected query's own recovery stack.
        self._groups: list[
            tuple[
                dict[int, "GpuNode"],
                "RouteEnumerator | None",
                "CrashCoordinator | None",
            ]
        ] = []
        self._gpu_universe: set[int] = set()
        #: Fabric damage already applied, so scopes registered *after*
        #: a permanent fault can seed their route enumerators and the
        #: admission layer can refuse queries on dead GPUs.
        self.failed_links: set[int] = set()
        self.crashed_gpus: set[int] = set()

    def bind(
        self,
        *,
        engine: "Engine",
        links: dict[int, "LinkChannel"],
        board: "LinkStateBoard",
        nodes: dict[int, "GpuNode"],
        enumerator: "RouteEnumerator | None",
        machine: "MachineTopology",
        packet_size: int,
        observer: "Observer | None" = None,
        coordinator: "CrashCoordinator | None" = None,
        integrity: "TransportIntegrity | None" = None,
        gpu_universe: "set[int] | None" = None,
    ) -> None:
        """Attach to one simulation run and schedule every fault.

        ``gpu_universe`` overrides the set of GPUs that count as fault
        targets: the serving layer passes the union of every admitted
        query's GPU set (its node groups register later, via
        :meth:`register_group`), while a classic single-query run
        defaults to the bound ``nodes``.
        """
        self._engine = engine
        self._links = links
        self._board = board
        self._machine = machine
        self._packet_size = packet_size
        self._observer = observer
        self._integrity = integrity
        self._groups = []
        if nodes or enumerator is not None or coordinator is not None:
            self._groups.append((nodes, enumerator, coordinator))
        self._gpu_universe = (
            set(gpu_universe) if gpu_universe is not None else set(nodes)
        )
        for event in self.plan.events:
            self._validate(event)
            engine.schedule(event.at, self._inject, event)

    def register_group(
        self,
        *,
        nodes: dict[int, "GpuNode"],
        enumerator: "RouteEnumerator | None" = None,
        coordinator: "CrashCoordinator | None" = None,
    ) -> None:
        """Register one more recovery scope (a serving session).

        Faults injected from now on fan out to this scope too: its
        enumerator learns failed links, its nodes take stragglers and
        its coordinator (if any) is told about crashes of GPUs it owns.
        Damage already on the fabric is replayed into the enumerator
        immediately so late-admitted queries never route over a link
        that died before they arrived.
        """
        for link_id in self.failed_links:
            if enumerator is not None:
                enumerator.fail_link(link_id)
        if enumerator is not None and self.failed_links:
            enumerator.cache.invalidate()
        self._groups.append((nodes, enumerator, coordinator))

    def unregister_group(self, nodes: dict[int, "GpuNode"]) -> None:
        """Drop a finished session's scope (matched by its nodes dict)."""
        self._groups = [
            group for group in self._groups if group[0] is not nodes
        ]

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------

    def _validate(self, event: FaultEvent) -> None:
        if event.kind in (FaultKind.GPU_STRAGGLER, FaultKind.GPU_CRASH):
            if event.gpu not in self._gpu_universe:
                raise FaultPlanError(
                    f"{event.kind.value} targets gpu{event.gpu}, which is "
                    f"not participating in this shuffle"
                )
        else:
            self._link_pair(event)  # raises if no NVLink exists

    def _link_pair(self, event: FaultEvent) -> list["LinkChannel"]:
        """Both directed channels of the event's GPU↔GPU NVLink."""
        channels = []
        for src, dst in ((event.src, event.dst), (event.dst, event.src)):
            spec = self._machine.nvlink_between(src, dst)
            if spec is not None:
                channels.append(self._links[spec.link_id])
        if not channels:
            raise FaultPlanError(
                f"{event.kind.value} targets gpu{event.src}<->gpu{event.dst}, "
                f"but no NVLink connects them"
            )
        return channels

    def _gpu_channels(self, gpu: int) -> list["LinkChannel"]:
        """Every directed link touching ``gpu`` (NVLink and PCIe)."""
        return [
            channel
            for channel in self._links.values()
            if (channel.spec.src.is_gpu and channel.spec.src.index == gpu)
            or (channel.spec.dst.is_gpu and channel.spec.dst.index == gpu)
        ]

    # ------------------------------------------------------------------
    # Injection / restoration
    # ------------------------------------------------------------------

    def _invalidate_caches(self) -> None:
        # Static route quantities (link lists, latency sums, T_R) are
        # recomputed from scratch after any fault broadcast, so a
        # faulted run can never evaluate routes against a stale cache.
        for _nodes, enumerator, _coordinator in self._groups:
            if enumerator is not None:
                enumerator.cache.invalidate()

    def _fail_link_everywhere(self, link_id: int) -> None:
        self.failed_links.add(link_id)
        for _nodes, enumerator, _coordinator in self._groups:
            if enumerator is not None:
                enumerator.fail_link(link_id)

    def _inject(self, event: FaultEvent) -> None:
        self.faults_injected += 1
        self._invalidate_caches()
        kind = event.kind
        if kind is FaultKind.LINK_DEGRADE:
            for channel in self._link_pair(event):
                channel.bandwidth_scale = event.magnitude
                # Extra per-packet service time is the penalty the ARM
                # metric should charge the sagging link.
                penalty = self._packet_size / channel.spec.bandwidth * (
                    1.0 / event.magnitude - 1.0
                )
                channel.fault_penalty = penalty
                self._board.publish_fault(channel.spec.link_id, penalty)
        elif kind is FaultKind.LINK_BLACKOUT:
            for channel in self._link_pair(event):
                channel.take_down()
                channel.fault_penalty = LINK_DOWN_PENALTY
                self._board.publish_fault(
                    channel.spec.link_id, LINK_DOWN_PENALTY
                )
        elif kind is FaultKind.LINK_FAIL:
            for channel in self._link_pair(event):
                channel.take_down()
                channel.fault_penalty = LINK_DOWN_PENALTY
                self._board.publish_fault(
                    channel.spec.link_id, LINK_DOWN_PENALTY
                )
                self._fail_link_everywhere(channel.spec.link_id)
        elif kind is FaultKind.GPU_STRAGGLER:
            for nodes, _enumerator, _coordinator in self._groups:
                if event.gpu in nodes:
                    nodes[event.gpu].apply_slowdown(event.magnitude)
        elif kind is FaultKind.GPU_CRASH:
            self.crashed_gpus.add(event.gpu)
            for channel in self._gpu_channels(event.gpu):
                channel.take_down()
                channel.fault_penalty = LINK_DOWN_PENALTY
                self._board.publish_fault(
                    channel.spec.link_id, LINK_DOWN_PENALTY
                )
                self._fail_link_everywhere(channel.spec.link_id)
            for nodes, _enumerator, coordinator in self._groups:
                # Join-level recovery: the crash is a real compute loss
                # (queues drained, received data discarded, detection
                # scheduled) — not just dead links.  Without a
                # coordinator the legacy link-only semantics apply; a
                # serving session whose query never touches the dead
                # GPU is left entirely alone.
                if coordinator is not None and event.gpu in nodes:
                    coordinator.notice_crash(event.gpu)
        elif kind in CORRUPTION_KINDS:
            self._install_tamperer(event)
        self._emit("fault.inject", event)
        if event.duration is not None:
            self._engine.schedule(event.duration, self._restore, event)

    def _restore(self, event: FaultEvent) -> None:
        self._invalidate_caches()
        kind = event.kind
        if kind is FaultKind.LINK_DEGRADE:
            for channel in self._link_pair(event):
                channel.bandwidth_scale = 1.0
                channel.fault_penalty = 0.0
                self._board.publish_fault(channel.spec.link_id, 0.0)
        elif kind is FaultKind.LINK_BLACKOUT:
            for channel in self._link_pair(event):
                channel.bring_up()
                channel.fault_penalty = 0.0
                self._board.publish_fault(channel.spec.link_id, 0.0)
        elif kind is FaultKind.GPU_STRAGGLER:
            for nodes, _enumerator, _coordinator in self._groups:
                if event.gpu in nodes:
                    nodes[event.gpu].clear_slowdown()
        elif kind in CORRUPTION_KINDS:
            for channel in self._link_pair(event):
                channel.tamper = None
        self._emit("fault.restore", event)
        if self._observer is not None:
            self._observer.add_span(
                f"fault:{kind.value}",
                event.at,
                self._engine.now,
                track=FAULT_TRACK,
                category="fault",
                **self._attrs(event),
            )

    def _install_tamperer(self, event: FaultEvent) -> None:
        """Arm both directed channels of the link with one shared tamperer.

        One tamperer (and one seeded RNG) per fault event, shared by both
        directions, so the corruption pattern is a pure function of the
        plan — independent of packet interleaving across directions.
        """
        import random
        import zlib

        from repro.sim.integrity import PacketTamperer

        if self._integrity is None:
            raise FaultPlanError(
                f"{event.kind.value} fault requires the transport integrity "
                f"layer, which is not active for this run"
            )
        seed = (
            zlib.crc32(
                f"{event.kind.value}:{event.src}:{event.dst}:{event.at}".encode(
                    "utf-8"
                )
            )
            ^ self.plan.seed
        )
        tamperer = PacketTamperer(
            kind=event.kind.value,
            magnitude=event.magnitude,
            rng=random.Random(seed),
            integrity=self._integrity,
        )
        for channel in self._link_pair(event):
            channel.tamper = tamperer

    def _attrs(self, event: FaultEvent) -> dict:
        attrs: dict = {"kind": event.kind.value}
        if event.gpu is not None:
            attrs["gpu"] = event.gpu
        if event.src is not None:
            attrs["src"] = event.src
            attrs["dst"] = event.dst
        if (
            event.kind in (FaultKind.LINK_DEGRADE, FaultKind.GPU_STRAGGLER)
            or event.kind in CORRUPTION_KINDS
        ):
            attrs["magnitude"] = event.magnitude
        return attrs

    def _emit(self, name: str, event: FaultEvent) -> None:
        observer = self._observer
        if observer is None:
            return
        if name == "fault.inject":
            observer.metrics.counter(
                "faults.injected", kind=event.kind.value
            ).inc()
        observer.instant(
            name,
            self._engine.now,
            track=FAULT_TRACK,
            category="fault",
            **self._attrs(event),
        )
        if observer.stream is not None:
            observer.stream.emit(
                "fault",
                t=self._engine.now,
                clock="sim",
                action=name,
                **self._attrs(event),
            )
