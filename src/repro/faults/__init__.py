"""Fault injection, recovery accounting and the chaos harness.

The paper's claim — adaptive multi-hop routing keeps the join at the
speed of the *fastest available* paths — only means something if the
simulator can take paths away.  This package provides:

* :class:`FaultPlan` / :class:`FaultEvent` — declarative, seeded fault
  schedules (YAML/JSON-loadable, reproducible run-to-run),
* :class:`FaultInjector` — applies a plan to a live shuffle simulation
  (link degradation/blackout/failure, GPU stragglers and crashes),
* :func:`run_chaos` — runs a join healthy and faulted, asserts result
  correctness and reports throughput retention,
* :func:`run_fuzz` — property-based chaos fuzzing: seeded random fault
  plans graded against the healthy digest, failures shrunk to minimal
  reproducers,
* built-in presets (``nvlink-brownout``, ``gpu-straggler``,
  ``link-flap``, ``nvlink-cut``, ``gpu-crash``, ``gpu-crash-x2``,
  ``payload-corrupt``, ``packet-dup``, ``packet-reorder``).

Packet-level recovery (retry/backoff/re-route/host fallback) lives in
:mod:`repro.sim.recovery`; join-level crash recovery (heartbeat
detection, partition reassignment, exact resumption) in
:mod:`repro.core.recovery`; see ``docs/robustness.md`` for the full
semantics.
"""

from repro.faults.chaos import ChaosError, ChaosReport, resolve_plan, run_chaos
from repro.faults.fuzz import (
    FuzzError,
    FuzzFailure,
    FuzzReport,
    run_fuzz,
    sample_plan,
    shrink_plan,
)
from repro.faults.injector import FAULT_TRACK, LINK_DOWN_PENALTY, FaultInjector
from repro.faults.plan import (
    CORRUPTION_KINDS,
    PRESET_NAMES,
    RETRY_FIELDS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    build_preset,
)

__all__ = [
    "CORRUPTION_KINDS",
    "ChaosError",
    "ChaosReport",
    "FAULT_TRACK",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FuzzError",
    "FuzzFailure",
    "FuzzReport",
    "LINK_DOWN_PENALTY",
    "PRESET_NAMES",
    "RETRY_FIELDS",
    "build_preset",
    "resolve_plan",
    "run_chaos",
    "run_fuzz",
    "sample_plan",
    "shrink_plan",
]
