"""Collective operations as flow programs on the shuffle simulator.

Each collective is expressed as one or more *rounds* of flows; rounds
are simulated back-to-back (a round's flows must complete before the
next starts, matching the synchronization structure of ring/tree
algorithms).  The routing policy decides how each round's flows
traverse the machine, which is exactly where NCCL-style static
schedules and MG-Join's adaptive routing part ways.

Conventions: ``nbytes`` is the payload *per GPU* (the shard each rank
contributes); results report the total time and the effective
algorithm bandwidth ``busbw``-style, as collective benchmarks do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.routing.base import RoutingPolicy
from repro.sim.shuffle import FlowMatrix, ShuffleConfig, ShuffleSimulator
from repro.sim.stats import ShuffleReport
from repro.topology.machine import MachineTopology


@dataclass
class CollectiveResult:
    """Outcome of one collective execution."""

    operation: str
    num_gpus: int
    payload_bytes_per_gpu: int
    elapsed: float
    rounds: list[ShuffleReport] = field(default_factory=list)

    @property
    def algorithm_bandwidth(self) -> float:
        """Payload each GPU contributed / total time (bytes/s)."""
        if self.elapsed <= 0:
            return 0.0
        return self.payload_bytes_per_gpu / self.elapsed


def ring_neighbors(gpu_ids: tuple[int, ...]) -> list[tuple[int, int]]:
    """The (src, dst) pairs of a unidirectional ring over the GPUs."""
    ordered = tuple(gpu_ids)
    if len(ordered) < 2:
        raise ValueError("a ring needs at least two GPUs")
    return [
        (ordered[i], ordered[(i + 1) % len(ordered)])
        for i in range(len(ordered))
    ]


def _run_rounds(
    machine: MachineTopology,
    gpu_ids: tuple[int, ...],
    policy: RoutingPolicy,
    rounds: list[FlowMatrix],
    operation: str,
    payload: int,
    config: ShuffleConfig | None,
) -> CollectiveResult:
    config = config or ShuffleConfig(injection_rate=None, consume_rate=None)
    simulator = ShuffleSimulator(machine, gpu_ids, config)
    reports: list[ShuffleReport] = []
    elapsed = 0.0
    for flows in rounds:
        if flows.total_bytes == 0:
            continue
        report = simulator.run(flows, policy)
        reports.append(report)
        elapsed += report.elapsed
    return CollectiveResult(
        operation=operation,
        num_gpus=len(gpu_ids),
        payload_bytes_per_gpu=payload,
        elapsed=elapsed,
        rounds=reports,
    )


def all_gather(
    machine: MachineTopology,
    gpu_ids: tuple[int, ...],
    nbytes: int,
    policy: RoutingPolicy,
    config: ShuffleConfig | None = None,
) -> CollectiveResult:
    """Ring all-gather: G-1 rounds, each GPU forwards the shard it just
    received to its ring successor (the NCCL schedule)."""
    ring = ring_neighbors(gpu_ids)
    rounds = []
    for _ in range(len(gpu_ids) - 1):
        flows = FlowMatrix()
        for src, dst in ring:
            flows.add(src, dst, nbytes)
        rounds.append(flows)
    return _run_rounds(
        machine, gpu_ids, policy, rounds, "all-gather", nbytes, config
    )


def all_reduce(
    machine: MachineTopology,
    gpu_ids: tuple[int, ...],
    nbytes: int,
    policy: RoutingPolicy,
    config: ShuffleConfig | None = None,
) -> CollectiveResult:
    """Ring all-reduce: reduce-scatter + all-gather, 2(G-1) rounds of
    1/G-sized chunks (the classic bandwidth-optimal schedule)."""
    num_gpus = len(gpu_ids)
    chunk = max(1, nbytes // num_gpus)
    ring = ring_neighbors(gpu_ids)
    rounds = []
    for _ in range(2 * (num_gpus - 1)):
        flows = FlowMatrix()
        for src, dst in ring:
            flows.add(src, dst, chunk)
        rounds.append(flows)
    return _run_rounds(
        machine, gpu_ids, policy, rounds, "all-reduce", nbytes, config
    )


def broadcast(
    machine: MachineTopology,
    gpu_ids: tuple[int, ...],
    nbytes: int,
    policy: RoutingPolicy,
    root: int | None = None,
    config: ShuffleConfig | None = None,
) -> CollectiveResult:
    """Flat broadcast: the root pushes its payload to every other GPU
    in one round; the routing policy decides how the copies travel."""
    root = root if root is not None else gpu_ids[0]
    if root not in gpu_ids:
        raise ValueError(f"root gpu{root} not among participants")
    flows = FlowMatrix()
    for dst in gpu_ids:
        if dst != root:
            flows.add(root, dst, nbytes)
    return _run_rounds(
        machine, gpu_ids, policy, [flows], "broadcast", nbytes, config
    )


def all_to_all(
    machine: MachineTopology,
    gpu_ids: tuple[int, ...],
    nbytes: int,
    policy: RoutingPolicy,
    config: ShuffleConfig | None = None,
) -> CollectiveResult:
    """Full personalized exchange: every GPU sends a distinct
    ``nbytes / G`` slice to every other GPU in one round — the join's
    distribution step as a collective."""
    num_gpus = len(gpu_ids)
    per_flow = max(1, nbytes // num_gpus)
    flows = FlowMatrix.all_to_all(gpu_ids, per_flow)
    return _run_rounds(
        machine, gpu_ids, policy, [flows], "all-to-all", nbytes, config
    )
