"""Collective communication over the routed multi-GPU fabric.

The paper's related work (§6) observes that existing multi-GPU
communication frameworks — NCCL above all — "adopt static routing
policies which are highly inefficient on modern multi-GPU hardware".
This package makes that comparison concrete: classic collective
algorithms (ring all-gather, ring all-reduce, broadcast, all-to-all)
expressed as flow matrices and executed by the same shuffle simulator
under any routing policy, so NCCL-style ring schedules over direct
links can be measured against MG-Join's adaptive multi-hop routing.
"""

from repro.collectives.ops import (
    CollectiveResult,
    all_gather,
    all_reduce,
    all_to_all,
    broadcast,
    ring_neighbors,
)

__all__ = [
    "CollectiveResult",
    "all_gather",
    "all_reduce",
    "all_to_all",
    "broadcast",
    "ring_neighbors",
]
