"""Time-domain behaviour of physical links.

Each :class:`LinkChannel` wraps one directed :class:`LinkSpec` as a FIFO
server: a transfer's service time is ``latency + bytes / bandwidth``,
and transfers queue when the link is busy.  The current queueing delay
is exactly the ``Q_i`` of the paper's adaptive routing metric (Eq. 4).

:class:`LinkStateBoard` models how GPUs learn about remote queueing
delays: a GPU always knows its own outgoing links precisely, while
changes on other links are *broadcast* and become visible only after a
propagation delay — and only when the change is significant, mirroring
the paper's "broadcast the change in the queuing delay" design.

Fault semantics (`repro.faults`): a channel can be *degraded* (its
effective bandwidth scaled down), taken *down* (transfers in flight or
newly submitted are lost and the completion event carries ``False``)
and brought back up.  Health changes are visible immediately to the
owning GPU through :meth:`LinkChannel.queue_delay` and to everybody
else through :meth:`LinkStateBoard.publish_fault`, which rides the same
propagation-delay broadcast path as queue-delay changes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

import numpy as np

from repro.sim.engine import Engine, SimEvent
from repro.topology.links import LinkSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Counter, Observer
    from repro.obs.analyze.timeline import LinkTimelineSampler
    from repro.sim.trace import Tracer


@dataclass
class LinkChannel:
    """FIFO service model for one directed link."""

    engine: Engine
    spec: LinkSpec
    board: "LinkStateBoard | None" = None
    tracer: "Tracer | None" = None
    #: Metrics sink (bytes / transfers per link); ``None`` = off.
    observer: "Observer | None" = None
    #: Time-resolved busy/queue sampler; ``None`` = off.
    sampler: "LinkTimelineSampler | None" = None
    _free_at: float = 0.0
    #: Accumulated busy (service) time, for utilization accounting.
    busy_time: float = 0.0
    bytes_sent: int = 0
    transfers: int = 0
    #: Service seconds of packets *routed over* this link but not yet
    #: submitted for transmission — the backlog sitting in sender
    #: queues.  Included in the queue delay so the adaptive metric sees
    #: congestion building up before the wire does.
    committed_load: float = 0.0
    #: Per-link metric instruments, created lazily on first transfer so
    #: the label is rendered once, not per packet.
    _bytes_counter: "Counter | None" = None
    _transfer_counter: "Counter | None" = None
    #: Fault state (driven by :class:`repro.faults.FaultInjector`).
    #: ``bandwidth_scale`` < 1 models a degraded link; ``up=False`` a
    #: blackout or permanent failure; ``fault_penalty`` is the extra
    #: queue-delay seconds the owning GPU (and, after a broadcast, every
    #: other GPU) perceives while the fault lasts.
    bandwidth_scale: float = 1.0
    up: bool = True
    fault_penalty: float = 0.0
    #: Incremented on every down transition; a transfer that started in
    #: an earlier outage epoch than it completes in was lost mid-flight.
    _outage_epoch: int = 0
    #: Transfers lost to a down link (submitted or in flight).
    transfers_lost: int = 0
    #: Corruption-fault hook (a :class:`~repro.sim.integrity.
    #: PacketTamperer`), installed by the fault injector for the
    #: event's duration; ``None`` = the wire is honest.  Applied by the
    #: sending GPU after a successful transmit, and only when the run's
    #: integrity layer is active — healthy runs never look at it.
    tamper: "object | None" = None
    #: Per-query bandwidth arbitration (:class:`LinkArbiter`), installed
    #: by the serving layer; ``None`` = the legacy virtual-FIFO booking,
    #: byte-identical to every pre-serve run.  Untagged transfers bypass
    #: the arbiter even when one is installed.
    arbiter: "LinkArbiter | None" = None

    def service_time(self, nbytes: float) -> float:
        return self.spec.latency + nbytes / (self.spec.bandwidth * self.bandwidth_scale)

    def service_times(self, sizes: "list[int]") -> "list[float]":
        """Service times for a whole batch of transfer sizes at once.

        One vectorized pass over the batch — the T_R/D_R cost terms of
        every packet on this link evaluated together.  Elementwise
        ``latency + size / effective_bandwidth`` is IEEE-identical to
        the scalar :meth:`service_time`, and the result is converted
        back to native floats so downstream accounting (conformance
        ledgers, JSON telemetry) never sees a numpy scalar.
        """
        sizes_arr = np.asarray(sizes, dtype=np.float64)
        services = self.spec.latency + sizes_arr / (
            self.spec.bandwidth * self.bandwidth_scale
        )
        return services.tolist()

    def commit(self, nbytes: float) -> None:
        """Reserve load for a packet routed over this link."""
        self.committed_load += self.service_time(nbytes)
        if self.board is not None:
            self.board.publish(self)
        if self.sampler is not None:
            self.sampler.record_queue(self)

    def commit_service(self, service: float) -> None:
        """:meth:`commit` with the service time already computed.

        The batch injection path prices a whole same-route batch per
        link via :meth:`service_times`, then commits packet-major with
        the precomputed scalars — the ``committed_load`` adds, board
        publishes and sampler records happen in exactly the order the
        per-packet path produces them.
        """
        self.committed_load += service
        if self.board is not None:
            self.board.publish(self)
        if self.sampler is not None:
            self.sampler.record_queue(self)

    def fulfill(self, nbytes: float) -> None:
        """Clear a reservation as the packet is submitted to the wire."""
        self.committed_load = max(0.0, self.committed_load - self.service_time(nbytes))
        if self.sampler is not None:
            self.sampler.record_queue(self)

    def queue_delay(self) -> float:
        """Time a packet routed over this link *now* would wait.

        Combines the wire-level FIFO backlog with load already committed
        by earlier routing decisions (the ``Q_i`` of Eq. 4), plus the
        fault penalty of a degraded or down link — the owning GPU knows
        its own ports' health immediately.
        """
        backlog = max(0.0, self._free_at - self.engine.now) + self.committed_load
        if self.arbiter is not None:
            backlog += self.arbiter.queued_service
        return backlog + self.fault_penalty

    def take_down(self) -> None:
        """Start an outage: lose in-flight transfers, refuse new ones."""
        if self.up:
            self.up = False
            self._outage_epoch += 1
            if self.observer is not None and self.observer.stream is not None:
                self.observer.stream.emit(
                    "link.down",
                    t=self.engine.now,
                    clock="sim",
                    link=self.spec.link_id,
                    label=str(self.spec),
                )

    def bring_up(self) -> None:
        """End an outage; whatever queued during it was lost, not saved."""
        was_down = not self.up
        self.up = True
        self._free_at = min(self._free_at, self.engine.now)
        if was_down and self.observer is not None and self.observer.stream is not None:
            self.observer.stream.emit(
                "link.up",
                t=self.engine.now,
                clock="sim",
                link=self.spec.link_id,
                label=str(self.spec),
            )

    def transmit(self, nbytes: int, tag: "object | None" = None) -> SimEvent:
        """Enqueue a transfer; the event triggers at completion.

        The event's value is ``True`` when the bytes crossed the wire
        and ``False`` when the link was down at submission or failed
        before the transfer completed (the packet is lost).

        ``tag`` identifies the submitting query to the per-link
        :class:`LinkArbiter` when one is installed; untagged transfers
        (or an arbiter-free link) take the legacy immediate-booking
        path.
        """
        if nbytes <= 0:
            raise ValueError(f"transfer size must be positive, got {nbytes}")
        if self.arbiter is not None and tag is not None:
            return self.arbiter.submit(nbytes, tag)
        engine = self.engine
        # Under the batch kernel, completion events are recycled through
        # the engine's event pool: a transfer event is yielded exactly
        # once by the DMA-engine process and its value is read before
        # the resume returns, so the sleep-pool contract holds.  A rare
        # second consumer demotes the event to a one-shot automatically.
        event = engine.pooled_event() if engine.batch else SimEvent(engine)
        if not self.up:
            # Dead port: the DMA engine notices after the launch latency.
            self.transfers_lost += 1
            self.engine.schedule(self.spec.latency, event.succeed, False)
            return event
        self._book(nbytes, self.service_time(nbytes), event)
        return event

    def _book(self, nbytes: int, service: float, event: SimEvent) -> None:
        """Book one transfer on the wire's virtual FIFO.

        Shared by the legacy immediate path (booked at submission) and
        the arbiter path (booked when the request wins arbitration); the
        accounting and completion scheduling are identical in both.
        """
        now = self.engine.now
        start = max(now, self._free_at)
        completion = start + service
        self._free_at = completion
        self.busy_time += service
        self.bytes_sent += nbytes
        self.transfers += 1
        if self.board is not None:
            self.board.publish(self)
        if self.sampler is not None:
            self.sampler.record_transfer(self, now, start, completion, nbytes)
        if self.tracer is not None:
            self.tracer.record(
                time=start,
                duration=service,
                kind="transfer",
                subject=str(self.spec),
                nbytes=nbytes,
            )
        if self.observer is not None:
            if self._bytes_counter is None:
                label = str(self.spec)
                metrics = self.observer.metrics
                self._bytes_counter = metrics.counter("link.bytes", link=label)
                self._transfer_counter = metrics.counter(
                    "link.transfers", link=label
                )
            self._bytes_counter.inc(nbytes)
            self._transfer_counter.inc()
        self.engine.schedule(
            completion - now, self._finish_transfer, event, self._outage_epoch
        )

    def _finish_transfer(self, event: SimEvent, epoch: int) -> None:
        delivered = self.up and epoch == self._outage_epoch
        if not delivered:
            self.transfers_lost += 1
        event.succeed(delivered)


ARBITRATION_MODES = ("fair", "priority")


@dataclass
class LinkArbiter:
    """Per-packet bandwidth arbitration between tagged (per-query) flows.

    Without an arbiter a link is a virtual FIFO: every submitted
    transfer is booked immediately, so one query's burst occupies the
    wire for its whole duration and a later query waits behind all of
    it.  The arbiter instead holds tagged requests in per-tag queues
    and re-arbitrates at every packet boundary:

    * ``fair`` — round-robin over the tags that have waiting requests,
      so N concurrent queries each get ~1/N of the wire regardless of
      how deep any one query's backlog is;
    * ``priority`` — highest :attr:`priorities` value first (default 0),
      round-robin among equals, so a latency-critical tenant preempts
      batch traffic at packet granularity.

    A single-tag workload is timing-identical to the legacy path: with
    no competing tag, each request books at exactly the completion
    boundary of its predecessor, which yields the same start times as
    immediate virtual-FIFO booking.  Waiting requests are visible to
    the routing metric through :attr:`queued_service`, which
    :meth:`LinkChannel.queue_delay` folds into the paper's ``Q_i``.
    """

    channel: LinkChannel
    mode: str = "fair"
    #: tag -> priority (higher wins); missing tags rank 0.
    priorities: dict = field(default_factory=dict)
    #: Service seconds of requests waiting in arbitration (not yet on
    #: the wire) — the cross-query backlog for ``queue_delay``.
    queued_service: float = 0.0
    _waiting: dict = field(default_factory=dict)
    _rotation: list = field(default_factory=list)
    _inflight: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ARBITRATION_MODES:
            raise ValueError(
                f"unknown arbitration mode {self.mode!r};"
                f" have {ARBITRATION_MODES}"
            )

    def submit(self, nbytes: int, tag: object) -> SimEvent:
        """Queue one tagged transfer; the event triggers at completion."""
        channel = self.channel
        engine = channel.engine
        event = engine.pooled_event() if engine.batch else SimEvent(engine)
        if not channel.up:
            # Dead port: fail fast after the launch latency, exactly
            # like the arbiter-free path.
            channel.transfers_lost += 1
            engine.schedule(channel.spec.latency, event.succeed, False)
            return event
        queue = self._waiting.get(tag)
        if queue is None:
            queue = self._waiting[tag] = deque()
            if self._inflight and self._rotation:
                # The tag now on the wire already rotated to the back;
                # a newly arriving tag slots in just ahead of it so it
                # waits one packet, not the whole in-flight backlog.
                self._rotation.insert(len(self._rotation) - 1, tag)
            else:
                self._rotation.append(tag)
        service = channel.service_time(nbytes)
        queue.append((nbytes, service, event))
        self.queued_service += service
        if not self._inflight:
            self._dispatch_next()
        return event

    def _dispatch_next(self) -> None:
        channel = self.channel
        engine = channel.engine
        while True:
            tag = self._pick_tag()
            if tag is None:
                self._inflight = False
                return
            nbytes, service, event = self._waiting[tag].popleft()
            self.queued_service -= service
            if not channel.up:
                # The link died while this request waited its turn; the
                # loss surfaces at the packet's own retry machinery.
                channel.transfers_lost += 1
                engine.schedule(channel.spec.latency, event.succeed, False)
                continue
            channel._book(nbytes, service, event)
            self._inflight = True
            # Re-arbitrate at the completion boundary whether or not
            # the wire delivered (an outage mid-flight must not stall
            # the other queries' waiting requests).
            engine.schedule(channel._free_at - engine.now, self._dispatch_next)
            return

    def _pick_tag(self) -> "object | None":
        eligible = [tag for tag in self._rotation if self._waiting[tag]]
        if not eligible:
            return None
        if self.mode == "priority":
            top = max(self.priorities.get(tag, 0) for tag in eligible)
            eligible = [
                tag for tag in eligible
                if self.priorities.get(tag, 0) == top
            ]
        tag = eligible[0]
        # Served tags rotate to the back so equal-rank tags share the
        # wire packet-for-packet.
        self._rotation.remove(tag)
        self._rotation.append(tag)
        return tag


@dataclass
class LinkStateBoard:
    """Delayed, change-triggered visibility of link queueing delays.

    ``publish`` is called by a link whenever its queue changes.  The
    change is broadcast — becoming visible to *other* GPUs only after
    ``broadcast_latency`` seconds — when the queue delay moved by more
    than ``threshold`` (relative) or ``quantum`` seconds (absolute,
    roughly one packet service time) since the last broadcast.  This
    mirrors the paper's design where a GPU broadcasts queuing-delay
    changes instead of synchronizing per decision, and
    ``broadcast_count`` measures how chatty that is.
    """

    engine: Engine
    broadcast_latency: float = 2e-6
    threshold: float = 0.25
    #: Minimum absolute queue-delay change (seconds) worth broadcasting.
    quantum: float = 50e-6
    _published: dict[int, float] = field(default_factory=dict)
    _last_broadcast: dict[int, float] = field(default_factory=dict)
    broadcast_count: int = 0
    #: Metrics sink (broadcast chatter, suppressed updates).
    observer: "Observer | None" = None
    #: Latest broadcast value per link, applied at delivery time so a
    #: change published while an earlier broadcast is still in flight is
    #: coalesced into it rather than lost or later overwritten.
    _pending: dict[int, float] = field(default_factory=dict)
    _pending_seq: dict[int, int] = field(default_factory=dict)
    _delivered_seq: dict[int, int] = field(default_factory=dict)
    #: Fault penalties (seconds) as broadcast / as remotely visible.
    _fault_pending: dict[int, float] = field(default_factory=dict)
    _fault_seq: dict[int, int] = field(default_factory=dict)
    _fault_delivered_seq: dict[int, int] = field(default_factory=dict)
    _fault_published: dict[int, float] = field(default_factory=dict)
    #: Heartbeat epochs piggybacked on the broadcast channel: each GPU's
    #: last announced liveness timestamp (crash-recovery detection).
    _heartbeats: dict[int, float] = field(default_factory=dict)

    def publish(self, link: LinkChannel) -> None:
        link_id = link.spec.link_id
        now = self.engine.now
        clear_at = link._free_at + link.committed_load
        last_clear_at = self._last_broadcast.get(link_id, 0.0)
        new_delay = max(0.0, clear_at - now)
        last_delay = max(0.0, last_clear_at - now)
        change = abs(new_delay - last_delay)
        if change < max(self.threshold * last_delay, self.quantum):
            if self.observer is not None:
                self.observer.metrics.counter("board.suppressed").inc()
            return
        self._last_broadcast[link_id] = clear_at
        self.broadcast_count += 1
        if self.observer is not None:
            self.observer.metrics.counter("board.broadcasts").inc()
        self._pending[link_id] = clear_at
        seq = self._pending_seq.get(link_id, 0) + 1
        self._pending_seq[link_id] = seq
        self.engine.schedule(self.broadcast_latency, self._deliver, link_id, seq)

    def _deliver(self, link_id: int, seq: int) -> None:
        # Apply the *latest* broadcast value, not the one captured when
        # this delivery was scheduled: overlapping broadcasts coalesce,
        # and a stale in-flight delivery can never roll a newer one back.
        if seq < self._delivered_seq.get(link_id, 0):
            return
        self._delivered_seq[link_id] = seq
        self._published[link_id] = self._pending[link_id]

    def publish_fault(self, link_id: int, penalty: float) -> None:
        """Broadcast a link-health change to remote GPUs.

        ``penalty`` is the extra queue-delay seconds remote route
        metrics should charge this link (0.0 restores health).  It rides
        the same propagation-delay path as queue-delay broadcasts.
        """
        self.broadcast_count += 1
        if self.observer is not None:
            self.observer.metrics.counter("board.broadcasts").inc()
        self._fault_pending[link_id] = penalty
        seq = self._fault_seq.get(link_id, 0) + 1
        self._fault_seq[link_id] = seq
        self.engine.schedule(self.broadcast_latency, self._deliver_fault, link_id, seq)

    def _deliver_fault(self, link_id: int, seq: int) -> None:
        if seq < self._fault_delivered_seq.get(link_id, 0):
            return
        self._fault_delivered_seq[link_id] = seq
        self._fault_published[link_id] = self._fault_pending[link_id]

    def record_heartbeat(self, gpu_id: int, beat_time: float) -> None:
        """Note a GPU's liveness announcement (piggybacked broadcast).

        Heartbeats ride the same change-triggered broadcast channel as
        queue-delay updates: a live GPU's epoch counter is stamped onto
        every board message it emits, so "last heard from" needs no
        dedicated traffic.  The crash-recovery monitor reads this
        registry to tell a crashed GPU (heartbeats stop) from a
        straggler (heartbeats continue, just slower work).
        """
        if beat_time > self._heartbeats.get(gpu_id, -1.0):
            self._heartbeats[gpu_id] = beat_time

    def last_heartbeat(self, gpu_id: int) -> float:
        """Last liveness timestamp heard from ``gpu_id`` (-1 = never)."""
        return self._heartbeats.get(gpu_id, -1.0)

    def published_queue_delay(self, link_id: int) -> float:
        """Queue delay of ``link_id`` as currently visible to remote GPUs."""
        base = max(0.0, self._published.get(link_id, 0.0) - self.engine.now)
        return base + self._fault_published.get(link_id, 0.0)
