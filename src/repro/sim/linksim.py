"""Time-domain behaviour of physical links.

Each :class:`LinkChannel` wraps one directed :class:`LinkSpec` as a FIFO
server: a transfer's service time is ``latency + bytes / bandwidth``,
and transfers queue when the link is busy.  The current queueing delay
is exactly the ``Q_i`` of the paper's adaptive routing metric (Eq. 4).

:class:`LinkStateBoard` models how GPUs learn about remote queueing
delays: a GPU always knows its own outgoing links precisely, while
changes on other links are *broadcast* and become visible only after a
propagation delay — and only when the change is significant, mirroring
the paper's "broadcast the change in the queuing delay" design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.sim.engine import Engine, SimEvent
from repro.topology.links import LinkSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Counter, Observer
    from repro.obs.analyze.timeline import LinkTimelineSampler
    from repro.sim.trace import Tracer


@dataclass
class LinkChannel:
    """FIFO service model for one directed link."""

    engine: Engine
    spec: LinkSpec
    board: "LinkStateBoard | None" = None
    tracer: "Tracer | None" = None
    #: Metrics sink (bytes / transfers per link); ``None`` = off.
    observer: "Observer | None" = None
    #: Time-resolved busy/queue sampler; ``None`` = off.
    sampler: "LinkTimelineSampler | None" = None
    _free_at: float = 0.0
    #: Accumulated busy (service) time, for utilization accounting.
    busy_time: float = 0.0
    bytes_sent: int = 0
    transfers: int = 0
    #: Service seconds of packets *routed over* this link but not yet
    #: submitted for transmission — the backlog sitting in sender
    #: queues.  Included in the queue delay so the adaptive metric sees
    #: congestion building up before the wire does.
    committed_load: float = 0.0
    #: Per-link metric instruments, created lazily on first transfer so
    #: the label is rendered once, not per packet.
    _bytes_counter: "Counter | None" = None
    _transfer_counter: "Counter | None" = None

    def service_time(self, nbytes: float) -> float:
        return self.spec.latency + nbytes / self.spec.bandwidth

    def commit(self, nbytes: float) -> None:
        """Reserve load for a packet routed over this link."""
        self.committed_load += self.service_time(nbytes)
        if self.board is not None:
            self.board.publish(self)
        if self.sampler is not None:
            self.sampler.record_queue(self)

    def fulfill(self, nbytes: float) -> None:
        """Clear a reservation as the packet is submitted to the wire."""
        self.committed_load = max(0.0, self.committed_load - self.service_time(nbytes))
        if self.sampler is not None:
            self.sampler.record_queue(self)

    def queue_delay(self) -> float:
        """Time a packet routed over this link *now* would wait.

        Combines the wire-level FIFO backlog with load already committed
        by earlier routing decisions; this is the ``Q_i`` of Eq. 4.
        """
        return max(0.0, self._free_at - self.engine.now) + self.committed_load

    def transmit(self, nbytes: int) -> SimEvent:
        """Enqueue a transfer; the event triggers at completion."""
        if nbytes <= 0:
            raise ValueError(f"transfer size must be positive, got {nbytes}")
        now = self.engine.now
        start = max(now, self._free_at)
        service = self.service_time(nbytes)
        completion = start + service
        self._free_at = completion
        self.busy_time += service
        self.bytes_sent += nbytes
        self.transfers += 1
        if self.board is not None:
            self.board.publish(self)
        if self.sampler is not None:
            self.sampler.record_transfer(self, now, start, completion, nbytes)
        if self.tracer is not None:
            self.tracer.record(
                time=start,
                duration=service,
                kind="transfer",
                subject=str(self.spec),
                nbytes=nbytes,
            )
        if self.observer is not None:
            if self._bytes_counter is None:
                label = str(self.spec)
                metrics = self.observer.metrics
                self._bytes_counter = metrics.counter("link.bytes", link=label)
                self._transfer_counter = metrics.counter(
                    "link.transfers", link=label
                )
            self._bytes_counter.inc(nbytes)
            self._transfer_counter.inc()
        return self.engine.timeout(completion - now)


@dataclass
class LinkStateBoard:
    """Delayed, change-triggered visibility of link queueing delays.

    ``publish`` is called by a link whenever its queue changes.  The
    change is broadcast — becoming visible to *other* GPUs only after
    ``broadcast_latency`` seconds — when the queue delay moved by more
    than ``threshold`` (relative) or ``quantum`` seconds (absolute,
    roughly one packet service time) since the last broadcast.  This
    mirrors the paper's design where a GPU broadcasts queuing-delay
    changes instead of synchronizing per decision, and
    ``broadcast_count`` measures how chatty that is.
    """

    engine: Engine
    broadcast_latency: float = 2e-6
    threshold: float = 0.25
    #: Minimum absolute queue-delay change (seconds) worth broadcasting.
    quantum: float = 50e-6
    _published: dict[int, float] = field(default_factory=dict)
    _last_broadcast: dict[int, float] = field(default_factory=dict)
    broadcast_count: int = 0
    #: Metrics sink (broadcast chatter, suppressed updates).
    observer: "Observer | None" = None

    def publish(self, link: LinkChannel) -> None:
        link_id = link.spec.link_id
        now = self.engine.now
        clear_at = link._free_at + link.committed_load
        last_clear_at = self._last_broadcast.get(link_id, 0.0)
        new_delay = max(0.0, clear_at - now)
        last_delay = max(0.0, last_clear_at - now)
        change = abs(new_delay - last_delay)
        if change < max(self.threshold * last_delay, self.quantum):
            if self.observer is not None:
                self.observer.metrics.counter("board.suppressed").inc()
            return
        self._last_broadcast[link_id] = clear_at
        self.broadcast_count += 1
        if self.observer is not None:
            self.observer.metrics.counter("board.broadcasts").inc()
        self.engine.schedule(self.broadcast_latency, self._deliver, link_id, clear_at)

    def _deliver(self, link_id: int, clear_at: float) -> None:
        self._published[link_id] = clear_at

    def published_queue_delay(self, link_id: int) -> float:
        """Queue delay of ``link_id`` as currently visible to remote GPUs."""
        return max(0.0, self._published.get(link_id, 0.0) - self.engine.now)
