"""Per-GPU sender / receiver / relay machinery (paper §4.1).

Each participating GPU runs, inside the discrete-event engine:

* an **injector** process that turns the GPU's outgoing flows into
  packets, chooses a route per batch via the routing policy, and places
  packets on the per-neighbour outgoing queues.  Injection is paced at
  the partition kernel's throughput, modelling the overlap between
  partitioning and data distribution (Rationale 2).
* ``dma_engines`` **sender** processes implementing the paper's
  weighted round-robin over outgoing queues: pick the most-loaded
  queue, take a batch of up to ``batch_size`` same-route packets,
  acquire routing-buffer credits at the next hop, and push the packets
  over the hop's physical links.
* a **receiver** that either delivers a packet (final destination —
  handing it to the local-partitioning consumer) or forwards it by
  re-queueing it toward the next hop, releasing the inbound buffer slot
  once the packet has fully left this GPU.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.sim.engine import Engine, SimEvent
from repro.sim.linksim import LinkChannel
from repro.sim.resources import RoutingBuffer
from repro.topology.machine import MachineTopology
from repro.topology.routes import Route

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.routing.base import RoutingContext, RoutingPolicy


@dataclass
class Packet:
    """One unit of routed data (paper: 2 MB payload + small header)."""

    flow_src: int
    flow_dst: int
    payload_bytes: int
    header_bytes: int
    route: Route
    sequence: int
    #: Buffer slot currently holding this packet (None at the source).
    held_buffer: RoutingBuffer | None = None
    #: Simulated time the packet was injected at its source.
    created_at: float = 0.0
    #: Uncontended service time of the packet's full route — the sum of
    #: link service times with empty queues.  Realized latency minus
    #: this is the packet's congestion-queueing share.
    ideal_latency: float = 0.0

    @property
    def wire_bytes(self) -> int:
        return self.payload_bytes + self.header_bytes


@dataclass
class GpuShuffleStats:
    """Per-GPU counters collected during a shuffle."""

    delivered_bytes: int = 0
    delivered_packets: int = 0
    forwarded_packets: int = 0
    injected_packets: int = 0
    last_delivery_time: float = 0.0
    last_consume_time: float = 0.0
    sync_time: float = 0.0


class GpuNode:
    """One GPU's view of the shuffle: queues, buffers, senders."""

    def __init__(
        self,
        engine: Engine,
        gpu_id: int,
        machine: MachineTopology,
        links: dict[int, LinkChannel],
        policy: "RoutingPolicy",
        context: "RoutingContext",
        *,
        packet_size: int,
        batch_size: int,
        header_bytes: int,
        buffer_slots: int,
        buffer_sync_latency: float,
        dma_engines: int,
        injection_rate: float | None,
        consume_rate: float | None,
        on_delivery: Callable[[Packet], None],
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if buffer_slots < batch_size:
            raise ValueError(
                "buffer_slots must be >= batch_size or batches could deadlock"
            )
        self.engine = engine
        self.gpu_id = gpu_id
        self.machine = machine
        self.links = links
        self.policy = policy
        self.context = context
        self.packet_size = packet_size
        self.batch_size = batch_size
        self.header_bytes = header_bytes
        self.injection_rate = injection_rate
        self.consume_rate = consume_rate
        self.on_delivery = on_delivery
        self.stats = GpuShuffleStats()

        #: Outgoing queues, one per next-hop GPU (created lazily).
        self._queues: dict[int, deque[Packet]] = {}
        #: Inbound routing buffers, one per upstream neighbour GPU.
        self._buffers: dict[int, RoutingBuffer] = {}
        self._buffer_slots = buffer_slots
        self._buffer_sync_latency = buffer_sync_latency
        self._idle_senders: deque[SimEvent] = deque()
        self._rr_order: list[int] = []
        #: DMA engines currently transmitting toward each next hop.
        self._active_sends: dict[int, int] = {}
        self._consumer_free_at = 0.0
        self.peers: dict[int, "GpuNode"] = {}
        for _ in range(dma_engines):
            engine.process(self._sender(), name=f"gpu{gpu_id}-sender")

    # ------------------------------------------------------------------
    # Buffers
    # ------------------------------------------------------------------

    def buffer_from(self, upstream_gpu: int) -> RoutingBuffer:
        """The circular buffer receiving packets from ``upstream_gpu``."""
        if upstream_gpu not in self._buffers:
            self._buffers[upstream_gpu] = RoutingBuffer(
                self.engine, self._buffer_slots, self._buffer_sync_latency
            )
        return self._buffers[upstream_gpu]

    @property
    def buffer_sync_count(self) -> int:
        return sum(buffer.sync_count for buffer in self._buffers.values())

    # ------------------------------------------------------------------
    # Injection (source side)
    # ------------------------------------------------------------------

    def start_flows(self, flows: dict[int, int]) -> SimEvent:
        """Start injecting ``{dst_gpu: payload_bytes}``; returns a
        completion event for the injector process."""
        return self.engine.process(
            self._injector(flows), name=f"gpu{self.gpu_id}-injector"
        )

    def _injector(self, flows: dict[int, int]):
        remaining = {
            dst: int(nbytes)
            for dst, nbytes in sorted(flows.items())
            if dst != self.gpu_id and nbytes > 0
        }
        sequence = 0
        while remaining:
            # Round-robin across destination flows, one batch at a time,
            # so every flow makes progress and congestion information
            # from earlier batches can influence later route choices.
            for dst in list(remaining):
                batch_payload = 0
                batch: list[Packet] = []
                while remaining[dst] > 0 and len(batch) < self.batch_size:
                    payload = min(self.packet_size, remaining[dst])
                    remaining[dst] -= payload
                    batch_payload += payload
                    batch.append(
                        Packet(
                            flow_src=self.gpu_id,
                            flow_dst=dst,
                            payload_bytes=payload,
                            header_bytes=self.header_bytes,
                            route=None,  # assigned below
                            sequence=sequence,
                        )
                    )
                    sequence += 1
                if remaining[dst] <= 0:
                    del remaining[dst]
                if not batch:
                    continue
                sync_cost = self.policy.batch_overhead(self.context)
                if sync_cost > 0:
                    self.stats.sync_time += sync_cost
                    yield self.engine.timeout(sync_cost)
                route = self.policy.choose_route(
                    self.context, self.gpu_id, dst, batch_payload, self.packet_size
                )
                observer = self.context.observer
                if observer is not None:
                    metrics = observer.metrics
                    metrics.counter("shuffle.packets", route=str(route)).inc(
                        len(batch)
                    )
                    metrics.counter("shuffle.batches", gpu=self.gpu_id).inc()
                for packet in batch:
                    packet.route = route
                    packet.created_at = self.engine.now
                    self._commit_route(packet)
                    self.enqueue(packet)
                    self.stats.injected_packets += 1
                if self.injection_rate is not None:
                    yield self.engine.timeout(batch_payload / self.injection_rate)

    def _commit_route(self, packet: Packet) -> None:
        for src, dst in packet.route.hops():
            for spec in self.machine.hop_path(src, dst):
                channel = self.links[spec.link_id]
                channel.commit(packet.wire_bytes)
                packet.ideal_latency += channel.service_time(packet.wire_bytes)

    # ------------------------------------------------------------------
    # Outgoing queues + senders
    # ------------------------------------------------------------------

    def enqueue(self, packet: Packet) -> None:
        next_gpu = packet.route.next_gpu_after(self.gpu_id)
        if next_gpu not in self._queues:
            self._queues[next_gpu] = deque()
            self._rr_order.append(next_gpu)
        self._queues[next_gpu].append(packet)
        if self._idle_senders:
            self._idle_senders.popleft().succeed()

    def _pick_batch(self) -> list[Packet] | None:
        """Weighted round-robin queue selection (paper §4.1).

        The weight of a queue is its backlog discounted by the number
        of DMA engines already serving it, so concurrent engines spread
        across next hops in proportion to waiting packets instead of
        piling onto the single longest queue."""
        best_gpu: int | None = None
        best_weight = 0.0
        for next_gpu in self._rr_order:
            queue_len = len(self._queues[next_gpu])
            if queue_len == 0:
                continue
            weight = queue_len / (1.0 + self._active_sends.get(next_gpu, 0))
            if weight > best_weight:
                best_gpu, best_weight = next_gpu, weight
        if best_gpu is None:
            return None
        # Rotate so ties go to a different queue next time.
        index = self._rr_order.index(best_gpu)
        self._rr_order = self._rr_order[index + 1 :] + self._rr_order[: index + 1]
        queue = self._queues[best_gpu]
        batch = [queue.popleft()]
        while queue and len(batch) < self.batch_size:
            if queue[0].route != batch[0].route:
                break
            batch.append(queue.popleft())
        return batch

    def _sender(self):
        while True:
            batch = self._pick_batch()
            if batch is None:
                waiter = self.engine.event()
                self._idle_senders.append(waiter)
                yield waiter
                continue
            next_gpu = batch[0].route.next_gpu_after(self.gpu_id)
            receiver = self.peers[next_gpu]
            inbound = receiver.buffer_from(self.gpu_id)
            path = self.machine.hop_path(self.gpu_id, next_gpu)
            first_link = self.links[path[0].link_id]
            self._active_sends[next_gpu] = self._active_sends.get(next_gpu, 0) + 1
            for packet in batch:
                yield from inbound.acquire()
                packet.held_buffer = inbound
                first_link.fulfill(packet.wire_bytes)
                # The DMA engine is occupied while injecting the packet
                # into the hop's first link; downstream links of a staged
                # path are traversed by a detached process so the next
                # packet of the batch pipelines behind this one.
                yield first_link.transmit(packet.wire_bytes)
                self.engine.process(
                    self._traverse(packet, path[1:], receiver),
                    name=f"gpu{self.gpu_id}-traverse",
                )
            self._active_sends[next_gpu] -= 1

    def _traverse(self, packet: Packet, remaining_path, receiver: "GpuNode"):
        for spec in remaining_path:
            link = self.links[spec.link_id]
            link.fulfill(packet.wire_bytes)
            yield link.transmit(packet.wire_bytes)
        receiver.on_arrival(packet)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def on_arrival(self, packet: Packet) -> None:
        if packet.flow_dst == self.gpu_id:
            self._deliver(packet)
        else:
            # Forwarded packets park in the (pointer-based) outgoing
            # queue, so the inbound circular-buffer slot frees as soon
            # as the packet is re-queued.  Holding slots across the
            # onward transmission instead would allow cyclic relay
            # patterns to deadlock on buffer credits.
            self.stats.forwarded_packets += 1
            if packet.held_buffer is not None:
                packet.held_buffer.release()
                packet.held_buffer = None
            self.enqueue(packet)

    def _deliver(self, packet: Packet) -> None:
        self.stats.delivered_bytes += packet.payload_bytes
        self.stats.delivered_packets += 1
        self.stats.last_delivery_time = self.engine.now
        observer = self.context.observer
        if observer is not None:
            observer.metrics.counter(
                "shuffle.delivered_bytes", gpu=self.gpu_id
            ).inc(packet.payload_bytes)
            observer.metrics.histogram("shuffle.packet_hops").observe(
                packet.route.num_hops
            )
            observer.metrics.histogram("shuffle.flow_latency_seconds").observe(
                self.engine.now - packet.created_at
            )
        if self.context.sampler is not None:
            self.context.sampler.record_delivery(packet, self.engine.now)
        slot = packet.held_buffer
        if self.consume_rate is None:
            if slot is not None:
                slot.release()
            self.stats.last_consume_time = self.engine.now
        else:
            start = max(self.engine.now, self._consumer_free_at)
            finish = start + packet.payload_bytes / self.consume_rate
            self._consumer_free_at = finish
            self.stats.last_consume_time = finish
            if slot is not None:
                self.engine.schedule(finish - self.engine.now, slot.release)
        self.on_delivery(packet)
