"""Per-GPU sender / receiver / relay machinery (paper §4.1).

Each participating GPU runs, inside the discrete-event engine:

* an **injector** process that turns the GPU's outgoing flows into
  packets, chooses a route per batch via the routing policy, and places
  packets on the per-neighbour outgoing queues.  Injection is paced at
  the partition kernel's throughput, modelling the overlap between
  partitioning and data distribution (Rationale 2).
* ``dma_engines`` **sender** processes implementing the paper's
  weighted round-robin over outgoing queues: pick the most-loaded
  queue, take a batch of up to ``batch_size`` same-route packets,
  acquire routing-buffer credits at the next hop, and push the packets
  over the hop's physical links.
* a **receiver** that either delivers a packet (final destination —
  handing it to the local-partitioning consumer) or forwards it by
  re-queueing it toward the next hop, releasing the inbound buffer slot
  once the packet has fully left this GPU.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.sim.engine import Engine, SimEvent, SimulationError
from repro.sim.linksim import LinkChannel
from repro.sim.resources import RoutingBuffer
from repro.topology.machine import MachineTopology, TopologyError
from repro.topology.routes import Route, UnroutableError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.routing.base import RoutingContext, RoutingPolicy
    from repro.sim.integrity import TransportIntegrity
    from repro.sim.recovery import CrashCoordinator, RecoveryManager


@dataclass
class Packet:
    """One unit of routed data (paper: 2 MB payload + small header)."""

    flow_src: int
    flow_dst: int
    payload_bytes: int
    header_bytes: int
    route: Route
    sequence: int
    #: Buffer slot currently holding this packet (None at the source).
    held_buffer: RoutingBuffer | None = None
    #: Simulated time the packet was injected at its source.
    created_at: float = 0.0
    #: Uncontended service time of the packet's full route — the sum of
    #: link service times with empty queues.  Realized latency minus
    #: this is the packet's congestion-queueing share.
    ideal_latency: float = 0.0
    #: Transmission attempts that ended in a loss (0 = never lost).
    attempts: int = 0
    #: True once the packet was relayed through the host-staged
    #: fallback path instead of the GPU fabric.
    fallback: bool = False
    #: Verified-transport envelope, stamped by
    #: :class:`~repro.sim.integrity.TransportIntegrity` when the
    #: integrity layer is active; all zero (and never read) otherwise.
    #: ``uid`` is run-unique — ``sequence`` alone collides between the
    #: per-GPU injector counters and the crash coordinator's host sends.
    uid: int = 0
    payload_token: int = 0
    checksum: int = 0
    #: True on a fault-made duplicate copy: it carries no accounting
    #: weight (the original owns the flow's conservation books).
    duplicate: bool = False
    #: Link ids committed for the current route but not yet submitted
    #: to the wire; returned (uncommitted) if the packet is lost so the
    #: adaptive metric stops charging a route the packet abandoned.
    pending_links: list[int] = field(default_factory=list)

    @property
    def wire_bytes(self) -> int:
        return self.payload_bytes + self.header_bytes


@dataclass
class GpuShuffleStats:
    """Per-GPU counters collected during a shuffle."""

    delivered_bytes: int = 0
    delivered_packets: int = 0
    forwarded_packets: int = 0
    injected_packets: int = 0
    last_delivery_time: float = 0.0
    last_consume_time: float = 0.0
    sync_time: float = 0.0


class GpuNode:
    """One GPU's view of the shuffle: queues, buffers, senders."""

    def __init__(
        self,
        engine: Engine,
        gpu_id: int,
        machine: MachineTopology,
        links: dict[int, LinkChannel],
        policy: "RoutingPolicy",
        context: "RoutingContext",
        *,
        packet_size: int,
        batch_size: int,
        header_bytes: int,
        buffer_slots: int,
        buffer_sync_latency: float,
        dma_engines: int,
        injection_rate: float | None,
        consume_rate: float | None,
        on_delivery: Callable[[Packet], None],
        recovery: "RecoveryManager | None" = None,
        coordinator: "CrashCoordinator | None" = None,
        integrity: "TransportIntegrity | None" = None,
        query_tag: "int | None" = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if buffer_slots < batch_size:
            raise ValueError(
                "buffer_slots must be >= batch_size or batches could deadlock"
            )
        self.engine = engine
        self.gpu_id = gpu_id
        self.machine = machine
        self.links = links
        self.policy = policy
        self.context = context
        self.packet_size = packet_size
        self.batch_size = batch_size
        self.header_bytes = header_bytes
        self.injection_rate = injection_rate
        self.consume_rate = consume_rate
        self.on_delivery = on_delivery
        #: Retry/re-route/fallback machinery; ``None`` = packets are
        #: never lost, so the legacy fast path runs unchanged.
        self.recovery = recovery
        #: Crash-recovery bookkeeping; ``None`` = GPUs cannot die, so
        #: no crash check ever runs on the hot path.
        self.coordinator = coordinator
        #: Verified-transport envelope state; ``None`` = packets are
        #: never stamped or checked, the legacy path runs unchanged.
        self.integrity = integrity
        #: Serving-layer query id stamped onto every wire transfer this
        #: node submits, so shared-link arbiters can tell tenants apart;
        #: ``None`` (every pre-serve run) leaves transfers untagged.
        self.query_tag = query_tag
        #: Set by :meth:`crash`: this GPU does no further work.
        self.crashed = False
        self.crash_time: float | None = None
        #: Set by :meth:`cancel_remaining` (deadline expiry / retry
        #: give-up): outstanding work is dropped without crash books.
        self.cancelled = False
        #: ``remaining`` dicts of the live injector processes, so flows
        #: toward a dead destination can be cancelled at the source.
        self._active_remaining: list[dict[int, int]] = []
        #: Healthy rates, restored when a straggler fault clears.
        self._base_injection_rate = injection_rate
        self._base_consume_rate = consume_rate
        self.stats = GpuShuffleStats()

        #: Outgoing queues, one per next-hop GPU (created lazily).
        self._queues: dict[int, deque[Packet]] = {}
        #: Inbound routing buffers, one per upstream neighbour GPU.
        self._buffers: dict[int, RoutingBuffer] = {}
        self._buffer_slots = buffer_slots
        self._buffer_sync_latency = buffer_sync_latency
        self._idle_senders: deque[SimEvent] = deque()
        self._rr_order: list[int] = []
        #: DMA engines currently transmitting toward each next hop.
        self._active_sends: dict[int, int] = {}
        self._consumer_free_at = 0.0
        #: (route, dst) pairs that already passed _validate_route; a
        #: route object is immutable, so one successful validation
        #: holds for every later batch on the same flow.
        self._validated_routes: set[tuple[Route, int]] = set()
        self.peers: dict[int, "GpuNode"] = {}
        for _ in range(dma_engines):
            engine.process(self._sender(), name=f"gpu{gpu_id}-sender")

    # ------------------------------------------------------------------
    # Buffers
    # ------------------------------------------------------------------

    def buffer_from(self, upstream_gpu: int) -> RoutingBuffer:
        """The circular buffer receiving packets from ``upstream_gpu``."""
        if upstream_gpu not in self._buffers:
            self._buffers[upstream_gpu] = RoutingBuffer(
                self.engine, self._buffer_slots, self._buffer_sync_latency
            )
        return self._buffers[upstream_gpu]

    @property
    def buffer_sync_count(self) -> int:
        return sum(buffer.sync_count for buffer in self._buffers.values())

    # ------------------------------------------------------------------
    # Injection (source side)
    # ------------------------------------------------------------------

    def start_flows(self, flows: dict[int, int]) -> SimEvent:
        """Start injecting ``{dst_gpu: payload_bytes}``; returns a
        completion event for the injector process."""
        return self.engine.process(
            self._injector(flows), name=f"gpu{self.gpu_id}-injector"
        )

    def _injector(self, flows: dict[int, int]):
        remaining = {
            dst: int(nbytes)
            for dst, nbytes in sorted(flows.items())
            if dst != self.gpu_id and nbytes > 0
        }
        coordinator = self.coordinator
        if coordinator is not None:
            self._active_remaining.append(remaining)
        integrity = self.integrity
        # Under the batch kernel, whole injection batches are stamped /
        # cost-priced in single passes; values and ordering stay
        # identical to the per-packet path (see _commit_route_batched).
        batched = self.engine.batch
        sequence = 0
        while remaining:
            # Round-robin across destination flows, one batch at a time,
            # so every flow makes progress and congestion information
            # from earlier batches can influence later route choices.
            for dst in list(remaining):
                if self.crashed or self.cancelled:
                    # Un-injected bytes stay in the planned-minus-
                    # injected books; the coordinator re-sends them
                    # host-side once this GPU is declared dead.  A
                    # cancelled query simply stops injecting.
                    return
                if dst not in remaining:
                    continue  # cancelled while an earlier flow slept
                batch_payload = 0
                batch: list[Packet] = []
                while remaining[dst] > 0 and len(batch) < self.batch_size:
                    payload = min(self.packet_size, remaining[dst])
                    remaining[dst] -= payload
                    batch_payload += payload
                    packet = Packet(
                        flow_src=self.gpu_id,
                        flow_dst=dst,
                        payload_bytes=payload,
                        header_bytes=self.header_bytes,
                        route=None,  # assigned below
                        sequence=sequence,
                    )
                    if integrity is not None and not batched:
                        integrity.stamp(packet)
                    batch.append(packet)
                    sequence += 1
                if integrity is not None and batched and batch:
                    integrity.stamp_batch(batch)
                if remaining[dst] <= 0:
                    del remaining[dst]
                if not batch:
                    continue
                sync_cost = self.policy.batch_overhead(self.context)
                if sync_cost > 0:
                    self.stats.sync_time += sync_cost
                    yield self.engine.sleep(sync_cost)
                    if self.crashed or self.cancelled:
                        return
                if coordinator is not None and coordinator.is_dead(dst):
                    # Declared dead while this batch was being built:
                    # the partitions were reassigned, drop the bytes.
                    for packet in batch:
                        packet.created_at = self.engine.now
                        coordinator.orphaned(packet)
                    continue
                try:
                    route = self.policy.choose_route(
                        self.context, self.gpu_id, dst, batch_payload, self.packet_size
                    )
                except UnroutableError as exc:
                    if self.recovery is None:
                        raise SimulationError(
                            f"flow gpu{self.gpu_id}->gpu{dst} became "
                            f"unroutable and no recovery is configured: {exc}"
                        ) from exc
                    # Every fabric path to this destination is dead;
                    # degrade the whole batch to the host relay.
                    for packet in batch:
                        packet.route = Route((self.gpu_id, dst))
                        packet.created_at = self.engine.now
                        self.stats.injected_packets += 1
                        if coordinator is not None:
                            coordinator.note_injected(
                                self.gpu_id, dst, packet.payload_bytes
                            )
                        self.recovery.fallback(
                            self, packet, reason="unroutable-at-source"
                        )
                    if self.injection_rate is not None:
                        yield self.engine.sleep(
                            batch_payload / self.injection_rate
                        )
                    continue
                self._validate_route(route, dst)
                observer = self.context.observer
                if observer is not None:
                    metrics = observer.metrics
                    metrics.counter("shuffle.packets", route=str(route)).inc(
                        len(batch)
                    )
                    metrics.counter("shuffle.batches", gpu=self.gpu_id).inc()
                conformance = self.context.conformance
                prediction = None
                if conformance is not None:
                    # Price the chosen route exactly as this GPU
                    # perceives it at injection; matched against the
                    # realized latency in _deliver.
                    prediction = conformance.predict(
                        self.context, self.gpu_id, route, self.packet_size
                    )
                if batched and len(batch) > 1:
                    channels, services = self._route_services(route, batch)
                else:
                    channels = services = None
                for index, packet in enumerate(batch):
                    packet.route = route
                    packet.created_at = self.engine.now
                    if prediction is not None:
                        conformance.register(packet, prediction)
                    if services is not None:
                        self._commit_route_batched(packet, channels, services, index)
                    else:
                        self._commit_route(packet)
                    self.enqueue(packet)
                    self.stats.injected_packets += 1
                    if coordinator is not None:
                        coordinator.note_injected(
                            self.gpu_id, dst, packet.payload_bytes
                        )
                if self.injection_rate is not None:
                    yield self.engine.sleep(batch_payload / self.injection_rate)
        if coordinator is not None:
            self._active_remaining.remove(remaining)

    def _validate_route(self, route: Route, dst: int) -> None:
        """Reject a policy route that is not a connected src→dst path.

        Successful validations are memoized per (route, dst): routes
        are immutable and policies re-serve the same few candidates for
        every batch of a flow, so the structural walk runs once.
        """
        if (route, dst) in self._validated_routes:
            return
        if route.src != self.gpu_id or route.dst != dst:
            raise SimulationError(
                f"routing policy {self.policy.name!r} returned route "
                f"{route} for flow gpu{self.gpu_id}->gpu{dst}: route "
                f"endpoints do not match the flow"
            )
        for relay in route.intermediates:
            if relay not in self.peers:
                raise SimulationError(
                    f"routing policy {self.policy.name!r} returned route "
                    f"{route} for flow gpu{self.gpu_id}->gpu{dst}, but "
                    f"relay gpu{relay} is not participating in this shuffle"
                )
        for hop_src, hop_dst in route.hops():
            try:
                self.machine.hop_path(hop_src, hop_dst)
            except TopologyError as exc:
                raise SimulationError(
                    f"routing policy {self.policy.name!r} returned route "
                    f"{route} for flow gpu{self.gpu_id}->gpu{dst}, but "
                    f"hop gpu{hop_src}->gpu{hop_dst} is not connected: {exc}"
                ) from exc
        self._validated_routes.add((route, dst))

    def _commit_route(self, packet: Packet) -> None:
        packet.ideal_latency = 0.0
        packet.pending_links.clear()
        # The cached expansion walks hops in route order, so commits and
        # the ideal-latency accumulation order are unchanged.
        for spec in self.context.enumerator.cache.links(packet.route):
            channel = self.links[spec.link_id]
            channel.commit(packet.wire_bytes)
            packet.pending_links.append(spec.link_id)
            packet.ideal_latency += channel.service_time(packet.wire_bytes)

    def _route_services(
        self, route: Route, batch: list[Packet]
    ) -> tuple[list[LinkChannel], list[list[float]]]:
        """Price a same-route batch: one vectorized pass per link.

        Returns the route's channels (in route order) and, per channel,
        the batch's service times.  Everything in the batch shares the
        route, so the whole T_R/D_R cost evaluation collapses into one
        :meth:`~repro.sim.linksim.LinkChannel.service_times` array pass
        per link instead of two scalar evaluations per packet per link.
        """
        channels = [
            self.links[spec.link_id]
            for spec in self.context.enumerator.cache.links(route)
        ]
        sizes = [packet.wire_bytes for packet in batch]
        return channels, [channel.service_times(sizes) for channel in channels]

    def _commit_route_batched(
        self,
        packet: Packet,
        channels: list[LinkChannel],
        services: list[list[float]],
        index: int,
    ) -> None:
        """:meth:`_commit_route` with batch-priced service times.

        Commits stay packet-major in route order — board publishes,
        sampler records and the ``committed_load`` / ``ideal_latency``
        float additions happen in exactly the per-packet order, just
        with the division work hoisted into :meth:`_route_services`.
        """
        packet.ideal_latency = 0.0
        packet.pending_links.clear()
        ideal = 0.0
        for channel, service in zip(channels, services):
            cost = service[index]
            channel.commit_service(cost)
            packet.pending_links.append(channel.spec.link_id)
            ideal += cost
        packet.ideal_latency = ideal

    # ------------------------------------------------------------------
    # Outgoing queues + senders
    # ------------------------------------------------------------------

    def enqueue(self, packet: Packet) -> None:
        next_gpu = packet.route.next_gpu_after(self.gpu_id)
        if next_gpu not in self._queues:
            self._queues[next_gpu] = deque()
            self._rr_order.append(next_gpu)
        self._queues[next_gpu].append(packet)
        if self._idle_senders:
            self._idle_senders.popleft().succeed()

    def _pick_batch(self) -> list[Packet] | None:
        """Weighted round-robin queue selection (paper §4.1).

        The weight of a queue is its backlog discounted by the number
        of DMA engines already serving it, so concurrent engines spread
        across next hops in proportion to waiting packets instead of
        piling onto the single longest queue."""
        best_gpu: int | None = None
        best_weight = 0.0
        for next_gpu in self._rr_order:
            queue_len = len(self._queues[next_gpu])
            if queue_len == 0:
                continue
            weight = queue_len / (1.0 + self._active_sends.get(next_gpu, 0))
            if weight > best_weight:
                best_gpu, best_weight = next_gpu, weight
        if best_gpu is None:
            return None
        # Rotate so ties go to a different queue next time.
        index = self._rr_order.index(best_gpu)
        self._rr_order = self._rr_order[index + 1 :] + self._rr_order[: index + 1]
        queue = self._queues[best_gpu]
        batch = [queue.popleft()]
        while queue and len(batch) < self.batch_size:
            if queue[0].route != batch[0].route:
                break
            batch.append(queue.popleft())
        return batch

    def _sender(self):
        while True:
            batch = self._pick_batch()
            if batch is None:
                waiter = self.engine.event()
                self._idle_senders.append(waiter)
                yield waiter
                continue
            next_gpu = batch[0].route.next_gpu_after(self.gpu_id)
            receiver = self.peers[next_gpu]
            inbound = receiver.buffer_from(self.gpu_id)
            path = self.machine.hop_path(self.gpu_id, next_gpu)
            first_link = self.links[path[0].link_id]
            self._active_sends[next_gpu] = self._active_sends.get(next_gpu, 0) + 1
            for packet in batch:
                if self.cancelled:
                    self._discard(packet)
                    continue
                if self.coordinator is not None and (
                    self.crashed or self.coordinator.is_dead(packet.flow_dst)
                ):
                    # This GPU died, or the destination was declared
                    # dead and its partitions reassigned — either way
                    # the packet is handed to the crash books.
                    self._orphan(packet)
                    continue
                if self.recovery is None:
                    # Fast path: with positive local credits acquire()
                    # yields nothing, so skip the generator round-trip.
                    if not inbound.try_acquire():
                        yield from inbound.acquire()
                else:
                    acquired = inbound.try_acquire()
                    if not acquired:
                        acquired = yield from inbound.acquire(
                            timeout=self.recovery.policy.acquire_timeout
                        )
                    if not acquired:
                        # The receiver's credits never freed (crashed
                        # GPU?) — recover instead of deadlocking.
                        self._recover(packet, reason="credit-timeout")
                        continue
                packet.held_buffer = inbound
                self._fulfill_link(packet, first_link)
                # The DMA engine is occupied while injecting the packet
                # into the hop's first link; downstream links of a staged
                # path are traversed by a detached process so the next
                # packet of the batch pipelines behind this one.
                transfer = first_link.transmit(
                    packet.wire_bytes, tag=self.query_tag
                )
                yield transfer
                if self.crashed:
                    self._orphan(packet)
                    continue
                if self.cancelled:
                    self._discard(packet)
                    continue
                if transfer.value is False and self.recovery is not None:
                    packet.held_buffer.release()
                    packet.held_buffer = None
                    self._recover(packet, reason="link-down")
                    continue
                delay = 0.0
                if self.integrity is not None and first_link.tamper is not None:
                    delay = first_link.tamper.apply(self, packet, receiver)
                if len(path) == 1:
                    # Single-link hop (the common NVLink case): there is
                    # nothing left to traverse, so hand the packet to
                    # the receiver directly instead of spinning up a
                    # whole generator process.  Both paths consume one
                    # schedule slot, so event order is unchanged.
                    self.engine.schedule(delay, receiver.on_arrival, packet)
                else:
                    self.engine.process(
                        self._traverse(packet, path[1:], receiver, delay),
                        name=f"gpu{self.gpu_id}-traverse",
                    )
            self._active_sends[next_gpu] -= 1

    def _traverse(
        self,
        packet: Packet,
        remaining_path,
        receiver: "GpuNode",
        delay: float = 0.0,
    ):
        if delay > 0.0:
            yield self.engine.sleep(delay)
        for spec in remaining_path:
            link = self.links[spec.link_id]
            self._fulfill_link(packet, link)
            transfer = link.transmit(packet.wire_bytes, tag=self.query_tag)
            yield transfer
            if self.crashed:
                self._orphan(packet)
                return
            if self.cancelled:
                self._discard(packet)
                return
            if transfer.value is False and self.recovery is not None:
                # Lost mid-hop on a staged path: give back the reserved
                # slot at the receiver and retransmit from this GPU.
                if packet.held_buffer is not None:
                    packet.held_buffer.release()
                    packet.held_buffer = None
                self._recover(packet, reason="link-down")
                return
            if self.integrity is not None and link.tamper is not None:
                hold = link.tamper.apply(self, packet, receiver)
                if hold > 0.0:
                    yield self.engine.sleep(hold)
        receiver.on_arrival(packet)

    def _fulfill_link(self, packet: Packet, channel: LinkChannel) -> None:
        channel.fulfill(packet.wire_bytes)
        try:
            packet.pending_links.remove(channel.spec.link_id)
        except ValueError:
            pass

    def _return_commits(self, packet: Packet) -> None:
        """Return committed-but-untraversed link load for a lost packet."""
        for link_id in list(packet.pending_links):
            self.links[link_id].fulfill(packet.wire_bytes)
        packet.pending_links.clear()

    def _discard(self, packet: Packet) -> None:
        """Drop a cancelled query's packet without crash bookkeeping."""
        if packet.held_buffer is not None:
            packet.held_buffer.release()
            packet.held_buffer = None
        self._return_commits(packet)

    def cancel_remaining(self) -> None:
        """Stop this query's outstanding work (deadline / retry give-up).

        Un-injected flow bytes are dropped, queued packets are discarded
        with their link commitments returned, and the injector/sender
        processes park at their next resumption.  Unlike :meth:`crash`
        this touches no coordinator books — the query is being abandoned
        cleanly, not recovered — and transfers already on the wire
        complete (and are discarded) harmlessly.
        """
        self.cancelled = True
        for remaining in self._active_remaining:
            remaining.clear()
        for queue in self._queues.values():
            while queue:
                self._discard(queue.popleft())

    # ------------------------------------------------------------------
    # Crash semantics (driven by the CrashCoordinator)
    # ------------------------------------------------------------------

    def _orphan(self, packet: Packet) -> None:
        """Hand a packet this GPU can no longer move to the crash books."""
        if packet.held_buffer is not None:
            packet.held_buffer.release()
            packet.held_buffer = None
        self._return_commits(packet)
        if packet.duplicate:
            # A fault-made copy is dropped without touching the books:
            # the original owns the flow's conservation accounting.
            return
        self.coordinator.orphaned(packet)

    def crash(self) -> int:
        """Kill this GPU: stop all send/receive/compute, drop its state.

        Everything the GPU was holding is lost at crash time: queued
        packets are orphaned to the coordinator, and the partition data
        it had already received (``delivered_bytes``) is discarded —
        the returned byte count is what recovery must reproduce
        elsewhere.  The sender/injector processes observe ``crashed``
        at their next resumption and park.
        """
        self.crashed = True
        self.crash_time = self.engine.now
        discarded = self.stats.delivered_bytes
        for queue in self._queues.values():
            while queue:
                self._orphan(queue.popleft())
        return discarded

    def fail_buffers(self) -> None:
        """Fail this (dead) GPU's inbound buffers so senders unblock."""
        for buffer in self._buffers.values():
            buffer.mark_dead()

    def cancel_flows_to(self, dead_gpu: int) -> int:
        """Cancel un-injected flow bytes toward a declared-dead GPU."""
        cancelled = 0
        for remaining in self._active_remaining:
            cancelled += remaining.pop(dead_gpu, 0)
        return cancelled

    def purge_dead_flows(self, is_dead: Callable[[int], bool]) -> None:
        """Drop or re-route queued packets involving dead GPUs.

        Packets *destined* to a dead GPU are orphaned (their partitions
        were reassigned); packets merely routed *through* a dead next
        hop toward a live destination are re-routed from here.
        """
        rerouted: list[Packet] = []
        for next_gpu in list(self._queues):
            queue = self._queues[next_gpu]
            if not queue:
                continue
            next_dead = is_dead(next_gpu)
            if not next_dead and not any(is_dead(p.flow_dst) for p in queue):
                continue
            keep: deque[Packet] = deque()
            for packet in queue:
                if is_dead(packet.flow_dst):
                    self._orphan(packet)
                elif next_dead:
                    self._return_commits(packet)
                    rerouted.append(packet)
                else:
                    keep.append(packet)
            self._queues[next_gpu] = keep
        for packet in rerouted:
            self._reroute_packet(packet)

    def _reroute_packet(self, packet: Packet) -> None:
        """Re-route a queued packet whose next hop died under it."""
        try:
            route = self.policy.choose_route(
                self.context,
                self.gpu_id,
                packet.flow_dst,
                packet.payload_bytes,
                self.packet_size,
            )
        except UnroutableError:
            self.recovery.fallback(self, packet, reason="next-hop-dead")
            return
        self._validate_route(route, packet.flow_dst)
        packet.route = route
        self._commit_route(packet)
        self.enqueue(packet)

    # ------------------------------------------------------------------
    # Recovery (lost packets)
    # ------------------------------------------------------------------

    def _recover(self, packet: Packet, reason: str) -> None:
        """A transmission attempt failed; retry, re-route or fall back."""
        recovery = self.recovery
        # Return committed-but-untraversed load so the adaptive metric
        # stops charging a route the packet has abandoned.
        self._return_commits(packet)
        if self.cancelled:
            self._discard(packet)
            return
        if self.coordinator is not None and (
            self.crashed or self.coordinator.is_dead(packet.flow_dst)
        ):
            self.coordinator.orphaned(packet)
            return
        packet.attempts += 1
        if packet.attempts >= recovery.policy.max_attempts:
            recovery.fallback(self, packet, reason=f"{reason}:retries-exhausted")
            return
        self.engine.process(
            self._retry(packet, reason), name=f"gpu{self.gpu_id}-retry"
        )

    def _retry(self, packet: Packet, reason: str):
        recovery = self.recovery
        yield self.engine.sleep(recovery.retry_delay(packet.attempts - 1))
        if self.cancelled:
            self._discard(packet)
            return
        if self.coordinator is not None and (
            self.crashed or self.coordinator.is_dead(packet.flow_dst)
        ):
            self.coordinator.orphaned(packet)
            return
        old_route = packet.route
        try:
            # Re-ask the policy from the packet's *current* GPU so ARM
            # routes the retry around whatever killed the last attempt.
            route = self.policy.choose_route(
                self.context,
                self.gpu_id,
                packet.flow_dst,
                packet.payload_bytes,
                self.packet_size,
            )
        except UnroutableError:
            recovery.fallback(self, packet, reason="unroutable")
            return
        self._validate_route(route, packet.flow_dst)
        packet.route = route
        self._commit_route(packet)
        recovery.record_retry(
            self, packet, reason=reason, rerouted=route != old_route
        )
        self.enqueue(packet)

    def _nack(self, packet: Packet) -> None:
        """Checksum mismatch: ask the source for a pristine retransmit.

        The NACK reuses the loss-recovery machinery at the *source*
        GPU, so the retransmission re-chooses its route, backs off
        through the same bounded-retry schedule, and degrades to the
        host relay once the attempt budget runs out — the host copy is
        re-read from source memory and therefore always pristine.
        """
        self.integrity.record_retransmit(packet)
        self.integrity.restamp(packet)
        source = self.peers.get(packet.flow_src)
        if source is None or source.recovery is None:
            return
        source._recover(packet, reason="checksum-failure")

    def receive_fallback(self, packet: Packet) -> None:
        """Accept a host-relayed packet (no routing-buffer slot held)."""
        packet.held_buffer = None
        if self.crashed:
            # The host relay targeted a GPU that died in the meantime.
            self.coordinator.orphaned(packet)
            return
        self._deliver(packet)

    def apply_slowdown(self, factor: float) -> None:
        """Model a straggler: compute-paced rates slow by ``factor``."""
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        if self._base_injection_rate is not None:
            self.injection_rate = self._base_injection_rate / factor
        if self._base_consume_rate is not None:
            self.consume_rate = self._base_consume_rate / factor

    def clear_slowdown(self) -> None:
        self.injection_rate = self._base_injection_rate
        self.consume_rate = self._base_consume_rate

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def on_arrival(self, packet: Packet) -> None:
        if self.crashed:
            # The wire delivered into a dead GPU; the data is lost with
            # it (abandoned or re-sent depending on the flow endpoint).
            self._orphan(packet)
            return
        if packet.flow_dst == self.gpu_id:
            self._deliver(packet)
        else:
            # Forwarded packets park in the (pointer-based) outgoing
            # queue, so the inbound circular-buffer slot frees as soon
            # as the packet is re-queued.  Holding slots across the
            # onward transmission instead would allow cyclic relay
            # patterns to deadlock on buffer credits.
            self.stats.forwarded_packets += 1
            if packet.held_buffer is not None:
                packet.held_buffer.release()
                packet.held_buffer = None
            self.enqueue(packet)

    def _deliver(self, packet: Packet) -> None:
        if self.integrity is not None:
            verdict = self.integrity.on_deliver(self, packet)
            if verdict != "ok":
                slot = packet.held_buffer
                if slot is not None:
                    slot.release()
                    packet.held_buffer = None
                if verdict == "corrupt":
                    self._nack(packet)
                return
        self.stats.delivered_bytes += packet.payload_bytes
        self.stats.delivered_packets += 1
        self.stats.last_delivery_time = self.engine.now
        if self.coordinator is not None and self.coordinator.checkpointing:
            self.coordinator.note_delivery(self.gpu_id, packet.payload_bytes)
        if self.recovery is not None and (packet.attempts > 0 or packet.fallback):
            self.recovery.record_recovered(packet)
        observer = self.context.observer
        if observer is not None:
            observer.metrics.counter(
                "shuffle.delivered_bytes", gpu=self.gpu_id
            ).inc(packet.payload_bytes)
            observer.metrics.histogram("shuffle.packet_hops").observe(
                packet.route.num_hops
            )
            observer.metrics.histogram("shuffle.flow_latency_seconds").observe(
                self.engine.now - packet.created_at
            )
        if self.context.sampler is not None:
            self.context.sampler.record_delivery(packet, self.engine.now)
        if self.context.conformance is not None:
            self.context.conformance.record_delivery(packet, self.engine.now)
        slot = packet.held_buffer
        if self.consume_rate is None:
            if slot is not None:
                slot.release()
            self.stats.last_consume_time = self.engine.now
        else:
            start = max(self.engine.now, self._consumer_free_at)
            finish = start + packet.payload_bytes / self.consume_rate
            self._consumer_free_at = finish
            self.stats.last_consume_time = finish
            if slot is not None:
                self.engine.schedule(finish - self.engine.now, slot.release)
        self.on_delivery(packet)
