"""Verified transport: per-packet checksums, dedup, and retransmit.

The shuffle moves *simulated* bytes, so payload content is modelled by
a deterministic ``payload_token`` — a crc32 over the packet's identity
— stamped onto every packet at injection together with a ``checksum``
over that token.  A corruption fault (:mod:`repro.faults`) flips bits
in the token while the packet is on the wire, leaving the checksum
stale, exactly like silent data corruption leaves a CRC mismatch.

Two operating modes, both owned by :class:`TransportIntegrity`:

* **verify on** (``ShuffleConfig.verify_transport``): the receiver
  checks the checksum on delivery.  A mismatch is NACKed back to the
  source, which retransmits a pristine copy through the existing
  bounded-backoff retry path (host fallback once the budget runs out),
  and duplicate deliveries are absorbed by a per-run uid window — so a
  corrupted run still produces the byte-identical healthy digest.
* **verify off**: nothing is checked in-line (zero hot-path changes),
  but the end-to-end audit still *detects* what slipped through —
  stale-checksum deliveries and duplicate deliveries are counted so
  the chaos harness can report silent corruption (exit code 3)
  instead of returning a wrong result without a trace.

Healthy runs without corruption faults never instantiate this class,
so the default path pays nothing and digests stay byte-identical.
"""

from __future__ import annotations

import random
import struct
import zlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observer
    from repro.sim.engine import Engine
    from repro.sim.gpusim import GpuNode, Packet

__all__ = [
    "IntegrityStats",
    "PacketTamperer",
    "TransportIntegrity",
    "payload_checksum",
    "payload_token",
]


def payload_token(
    flow_src: int, flow_dst: int, sequence: int, payload_bytes: int
) -> int:
    """Deterministic stand-in for the packet's payload content."""
    return zlib.crc32(
        struct.pack("<qqqq", flow_src, flow_dst, sequence, payload_bytes)
    )


def payload_checksum(token: int) -> int:
    """The crc32 a sender stamps into the envelope at send time."""
    return zlib.crc32(struct.pack("<I", token & 0xFFFFFFFF))


@dataclass
class IntegrityStats:
    """Verified-transport accounting for one shuffle run.

    Present on :class:`~repro.sim.stats.ShuffleReport` whenever the
    integrity layer was active (verification requested, or a corruption
    fault in the plan); ``None`` otherwise.
    """

    #: Was receiver-side verification on (checksums checked, dups
    #: dropped, corrupt packets retransmitted)?
    verified: bool
    #: Wire-level tampering that actually happened (fault-side view).
    corrupted_wire: int = 0
    duplicated_wire: int = 0
    reordered_wire: int = 0
    #: Verification outcomes (verify on).
    checksum_failures: int = 0
    retransmits: int = 0
    dup_dropped: int = 0
    reorders_absorbed: int = 0
    #: What slipped through to the application (verify off).
    corrupt_delivered: int = 0
    dup_delivered: int = 0
    dup_payload_bytes: int = 0

    @property
    def silent_corruption(self) -> bool:
        """Did un-verified transport deliver corrupt or duplicate data?"""
        return self.corrupt_delivered > 0 or self.dup_delivered > 0

    def to_dict(self) -> dict:
        return {
            "verified": self.verified,
            "corrupted_wire": self.corrupted_wire,
            "duplicated_wire": self.duplicated_wire,
            "reordered_wire": self.reordered_wire,
            "checksum_failures": self.checksum_failures,
            "retransmits": self.retransmits,
            "dup_dropped": self.dup_dropped,
            "reorders_absorbed": self.reorders_absorbed,
            "corrupt_delivered": self.corrupt_delivered,
            "dup_delivered": self.dup_delivered,
            "dup_payload_bytes": self.dup_payload_bytes,
            "silent_corruption": self.silent_corruption,
        }


@dataclass
class TransportIntegrity:
    """Shared checksum/dedup state for one shuffle run."""

    engine: "Engine"
    verify: bool
    observer: "Observer | None" = None

    # Wire-level tampering counters (fed by PacketTamperer).
    corrupted_wire: int = 0
    duplicated_wire: int = 0
    reordered_wire: int = 0
    # Verification counters (verify on).
    checksum_failures: int = 0
    retransmits: int = 0
    dup_dropped: int = 0
    reorders_absorbed: int = 0
    # Audit counters (verify off: what reached the application).
    corrupt_delivered: int = 0
    dup_delivered: int = 0
    dup_payload_bytes: int = 0

    _uid_counter: int = 0
    _delivered_uids: set[int] = field(default_factory=set)
    #: Highest sequence delivered per flow, for reorder absorption.
    _last_sequence: dict[tuple[int, int], int] = field(default_factory=dict)
    #: uids a reorder tamperer deliberately held back.
    _reordered_uids: set[int] = field(default_factory=set)

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------

    def stamp(self, packet: "Packet") -> None:
        """Assign a run-unique uid and a pristine token + checksum."""
        self._uid_counter += 1
        packet.uid = self._uid_counter
        packet.payload_token = payload_token(
            packet.flow_src,
            packet.flow_dst,
            packet.sequence,
            packet.payload_bytes,
        )
        packet.checksum = payload_checksum(packet.payload_token)

    def stamp_batch(self, packets: "list[Packet]") -> None:
        """:meth:`stamp` a whole injection batch in one pass.

        uid assignment order (batch order) and the per-packet token /
        checksum values are identical to stamping one at a time; the
        counter is written back once instead of per packet.
        """
        uid = self._uid_counter
        for packet in packets:
            uid += 1
            packet.uid = uid
            packet.payload_token = payload_token(
                packet.flow_src,
                packet.flow_dst,
                packet.sequence,
                packet.payload_bytes,
            )
            packet.checksum = payload_checksum(packet.payload_token)
        self._uid_counter = uid

    def restamp(self, packet: "Packet") -> None:
        """Restore pristine payload/checksum for a retransmission.

        The source re-reads the data from its own memory, so whatever
        the wire did to the previous copy is gone.  The uid is kept:
        the retransmission is the same logical packet.
        """
        packet.payload_token = payload_token(
            packet.flow_src,
            packet.flow_dst,
            packet.sequence,
            packet.payload_bytes,
        )
        packet.checksum = payload_checksum(packet.payload_token)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def on_deliver(self, node: "GpuNode", packet: "Packet") -> str:
        """Grade one delivery: ``"ok"``, ``"dup"`` or ``"corrupt"``.

        ``"dup"`` and ``"corrupt"`` are only returned with verification
        on — the caller drops or NACKs the packet.  With verification
        off everything is accepted (``"ok"``) and the damage is counted
        for the end-to-end audit.
        """
        if packet.uid in self._delivered_uids:
            if self.verify:
                self.dup_dropped += 1
                self._count("dup_dropped")
                self._emit("dup-dropped", packet)
                return "dup"
            self.dup_delivered += 1
            self.dup_payload_bytes += packet.payload_bytes
            return "ok"
        stale = packet.checksum != payload_checksum(packet.payload_token)
        if stale and self.verify:
            self.checksum_failures += 1
            self._count("checksum_failures")
            self._emit("checksum-failure", packet)
            return "corrupt"
        self._delivered_uids.add(packet.uid)
        if stale:
            self.corrupt_delivered += 1
        flow = (packet.flow_src, packet.flow_dst)
        last = self._last_sequence.get(flow, -1)
        if packet.sequence > last:
            self._last_sequence[flow] = packet.sequence
        elif self.verify and packet.uid in self._reordered_uids:
            # Out-of-order *because a fault held the packet back*;
            # placement by (flow, sequence) absorbs it structurally.
            self.reorders_absorbed += 1
        return "ok"

    def record_retransmit(self, packet: "Packet") -> None:
        self.retransmits += 1
        self._count("retransmits")

    # ------------------------------------------------------------------
    # Fault side (fed by PacketTamperer)
    # ------------------------------------------------------------------

    def note_corrupted(self, packet: "Packet") -> None:
        self.corrupted_wire += 1

    def note_duplicated(self, packet: "Packet") -> None:
        self.duplicated_wire += 1

    def note_reordered(self, packet: "Packet") -> None:
        self.reordered_wire += 1
        self._reordered_uids.add(packet.uid)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def build_stats(self) -> IntegrityStats:
        return IntegrityStats(
            verified=self.verify,
            corrupted_wire=self.corrupted_wire,
            duplicated_wire=self.duplicated_wire,
            reordered_wire=self.reordered_wire,
            checksum_failures=self.checksum_failures,
            retransmits=self.retransmits,
            dup_dropped=self.dup_dropped,
            reorders_absorbed=self.reorders_absorbed,
            corrupt_delivered=self.corrupt_delivered,
            dup_delivered=self.dup_delivered,
            dup_payload_bytes=self.dup_payload_bytes,
        )

    def _count(self, name: str) -> None:
        if self.observer is not None:
            self.observer.metrics.counter(f"integrity.{name}").inc()

    def _emit(self, kind: str, packet: "Packet") -> None:
        if self.observer is not None and self.observer.stream is not None:
            self.observer.stream.emit(
                "integrity",
                t=self.engine.now,
                clock="sim",
                kind=kind,
                src=packet.flow_src,
                dst=packet.flow_dst,
                sequence=packet.sequence,
            )


@dataclass
class PacketTamperer:
    """One corruption fault's effect on packets crossing a link.

    Installed on both directed :class:`~repro.sim.linksim.LinkChannel`
    objects of the faulted NVLink for the event's duration.  ``apply``
    is called by the sending GPU after each successful transmission;
    the rng is seeded from the fault event + plan seed, so the same
    plan tampers with the same packets run after run.
    """

    kind: str
    magnitude: float
    rng: random.Random
    integrity: TransportIntegrity
    #: Arrival delay of a duplicate copy / a held-back packet, seconds.
    dup_delay: float = 20e-6
    reorder_delay: float = 200e-6

    def apply(
        self, node: "GpuNode", packet: "Packet", receiver: "GpuNode"
    ) -> float:
        """Maybe tamper with ``packet``; returns extra arrival delay."""
        if self.rng.random() >= self.magnitude:
            return 0.0
        integrity = self.integrity
        if self.kind == "payload-corrupt":
            packet.payload_token ^= 1 << self.rng.randrange(32)
            integrity.note_corrupted(packet)
        elif self.kind == "packet-dup":
            integrity.note_duplicated(packet)
            clone = replace(packet, held_buffer=None, pending_links=[], duplicate=True)
            # The copy lands at this hop's receiver slightly behind the
            # original and follows the normal receive/forward path.
            node.engine.schedule(self.dup_delay, receiver.on_arrival, clone)
        elif self.kind == "packet-reorder":
            integrity.note_reordered(packet)
            return self.reorder_delay * (1 + self.rng.randrange(4))
        return 0.0
