"""Array kernels behind the batch engine's compiled-backend seam.

:class:`~repro.sim.batch.BatchEngine` keeps its pending timers in flat
numpy arrays (a sorted run plus an unsorted append buffer) instead of a
Python tuple heap.  The two hot operations on that layout are

* **ready-batch extraction** — find the end of the same-instant cohort
  at the head of the sorted run (everything with the minimum timestamp
  moves to the ready deque in one slice), and
* **calendar merge** — fold the unsorted append buffer into the sorted
  run with one ``lexsort`` pass keyed by ``(time, sequence)``.

Both are pure array passes, so they can be compiled.  This module is
the seam: every kernel has a pure-numpy implementation and, when numba
is importable, an ``@njit`` twin.  Selection order:

1. ``REPRO_ENGINE_BACKEND=numpy`` forces the numpy fallback.
2. ``REPRO_ENGINE_BACKEND=numba`` requests the compiled backend; if
   numba is not installed the numpy fallback is used (with a warning)
   so the variable can be set unconditionally in CI matrices.
3. unset / ``auto``: numba when importable, numpy otherwise.

numba is *never* a hard dependency — the container images that run the
tier-1 suite do not ship it, and every digest gate must hold on the
fallback.  The kernels are deliberately value-identical between
backends: they only reorder *bookkeeping* (sorting keys, slicing
cohorts, summing forecast service times with sequential adds), never
simulation floats, so backend choice cannot leak into results.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

log = logging.getLogger("repro.sim.kernels")

#: Environment variable selecting the kernel backend.
ENGINE_BACKEND_ENV = "REPRO_ENGINE_BACKEND"

#: Recognized backend names (``auto`` resolves to one of the others).
BACKENDS = ("auto", "numpy", "numba")


class BackendError(ValueError):
    """An unknown backend name was requested."""


# ---------------------------------------------------------------------------
# Pure-numpy kernels (the always-available reference implementations)
# ---------------------------------------------------------------------------


def _cohort_end_numpy(times: np.ndarray, lo: int, hi: int) -> int:
    """End index of the equal-time prefix of ``times[lo:hi]``.

    ``times[lo:hi]`` is sorted ascending; the cohort is every entry
    whose timestamp equals ``times[lo]``.  One ``searchsorted`` pass.
    """
    return lo + int(np.searchsorted(times[lo:hi], times[lo], side="right"))


def _merge_order_numpy(times: np.ndarray, seqs: np.ndarray) -> np.ndarray:
    """Permutation sorting parallel ``(time, seq)`` arrays ascending.

    Sequence numbers are unique, so the order is total; ``lexsort``
    keys are (secondary, primary).
    """
    return np.lexsort((seqs, times))


def _link_drain_numpy(
    sizes: np.ndarray, free_at: float, now: float, latency: float, inv_bandwidth: float
) -> tuple[np.ndarray, np.ndarray, float]:
    """FIFO drain forecast for a batch of transfers on one link.

    Returns ``(starts, completions, busy_total)`` for submitting the
    ``sizes`` array back-to-back starting from the link's current
    ``free_at``.  This is a *forecast* kernel (micro-benchmarks,
    what-if analysis): the in-simulation drain keeps its sequential
    scalar adds because cumulative-sum reassociation changes float
    results, and the engine's byte-identity contract forbids that.
    """
    service = latency + sizes * inv_bandwidth
    head = now if now > free_at else free_at
    completions = head + np.cumsum(service)
    starts = completions - service
    return starts, completions, float(service.sum())


# ---------------------------------------------------------------------------
# Optional numba twins
# ---------------------------------------------------------------------------


def _build_numba_kernels():
    """Compile the numba twins; raises ImportError when numba is absent."""
    import numba  # noqa: F401  (ImportError is the detection signal)
    from numba import njit

    @njit(cache=False)
    def cohort_end(times, lo, hi):  # pragma: no cover - needs numba
        head = times[lo]
        end = lo + 1
        while end < hi and times[end] == head:
            end += 1
        return end

    @njit(cache=False)
    def merge_order(times, seqs):  # pragma: no cover - needs numba
        order = np.argsort(times, kind="mergesort")
        # Stable sort on time; break ties by seq with an insertion pass
        # (cohorts are small and seqs within a cohort are nearly sorted).
        n = order.shape[0]
        for i in range(1, n):
            j = i
            while (
                j > 0
                and times[order[j - 1]] == times[order[j]]
                and seqs[order[j - 1]] > seqs[order[j]]
            ):
                order[j - 1], order[j] = order[j], order[j - 1]
                j -= 1
        return order

    @njit(cache=False)
    def link_drain(sizes, free_at, now, latency, inv_bandwidth):
        # pragma: no cover - needs numba
        n = sizes.shape[0]
        starts = np.empty(n, dtype=np.float64)
        completions = np.empty(n, dtype=np.float64)
        head = now if now > free_at else free_at
        busy = 0.0
        acc = 0.0
        for i in range(n):
            service = latency + sizes[i] * inv_bandwidth
            starts[i] = head + acc
            acc += service
            completions[i] = head + acc
            busy += service
        return starts, completions, busy

    return cohort_end, merge_order, link_drain


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelBackend:
    """One resolved set of kernels plus the name that selected it."""

    name: str
    cohort_end: Callable[[np.ndarray, int, int], int]
    merge_order: Callable[[np.ndarray, np.ndarray], np.ndarray]
    link_drain: Callable[..., tuple[np.ndarray, np.ndarray, float]]


_NUMPY_BACKEND = KernelBackend(
    name="numpy",
    cohort_end=_cohort_end_numpy,
    merge_order=_merge_order_numpy,
    link_drain=_link_drain_numpy,
)

_RESOLVED: dict[str, KernelBackend] = {}


def numba_available() -> bool:
    """True when the numba compiler is importable."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend by explicit name, env var, or auto-detection."""
    requested = (name or os.environ.get(ENGINE_BACKEND_ENV, "") or "auto").lower()
    if requested not in BACKENDS:
        raise BackendError(
            f"unknown engine backend {requested!r}; expected one of {BACKENDS}"
        )
    cached = _RESOLVED.get(requested)
    if cached is not None:
        return cached
    if requested == "numpy":
        backend = _NUMPY_BACKEND
    else:
        try:
            cohort_end, merge_order, link_drain = _build_numba_kernels()
            backend = KernelBackend(
                name="numba",
                cohort_end=cohort_end,
                merge_order=merge_order,
                link_drain=link_drain,
            )
        except ImportError:
            if requested == "numba":
                log.warning(
                    "REPRO_ENGINE_BACKEND=numba requested but numba is not"
                    " installed; falling back to the pure-numpy kernels"
                )
            backend = _NUMPY_BACKEND
    _RESOLVED[requested] = backend
    return backend


def backend_name(name: str | None = None) -> str:
    """The resolved backend's name (``numpy`` or ``numba``)."""
    return resolve_backend(name).name
