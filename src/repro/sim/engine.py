"""A compact process-based discrete-event simulation kernel.

The kernel follows the SimPy model: *processes* are Python generators
that ``yield`` events; the engine resumes a process when the event it
waits on triggers.  Only the features the shuffle simulator needs are
implemented, which keeps the kernel small enough to test exhaustively.

Example::

    engine = Engine()

    def worker():
        yield engine.timeout(2.0)
        return "done"

    process = engine.process(worker())
    engine.run()
    assert engine.now == 2.0 and process.value == "done"

Fast path
---------

By default the engine runs with ``fast=True``: work scheduled for the
*current* instant (triggered-event callbacks and zero-delay schedules)
goes onto a FIFO ready deque instead of round-tripping through the time
heap.  Ready entries and heap entries share one global sequence
counter, and the run loop always dispatches the lowest sequence number
among the work runnable *now* — so the execution order is provably
identical to the reference mode (``fast=False``), where everything goes
through the heap.  ``tests/sim/test_fastpath_equivalence.py`` holds the
engine to that bit-for-bit.

:meth:`Engine.sleep` additionally recycles timeout events through a
pool.  It is opt-in precisely because a pooled event is reset the
moment the waiting process resumes: use it only for fire-and-forget
pacing waits where the event object is never retained (see
``docs/performance.md``).
"""

from __future__ import annotations

import heapq
import itertools
import os
from collections import deque
from typing import Any, Callable, Generator, Iterable

ProcessGenerator = Generator["SimEvent", Any, Any]

#: Environment variable selecting the default engine mode for runs that
#: do not pass an explicit ``engine_factory`` (CLI flags set it too).
ENGINE_MODE_ENV = "REPRO_ENGINE"

#: Recognized engine modes: the all-heap bit-exact reference, the
#: ready-deque fast path (default), and the array-calendar batch kernel.
ENGINE_MODES = ("reference", "fast", "batch")


def resolve_engine_mode(mode: str | None = None) -> str:
    """Resolve an engine mode from an explicit name or the environment."""
    resolved = (mode or os.environ.get(ENGINE_MODE_ENV, "") or "fast").lower()
    if resolved not in ENGINE_MODES:
        raise SimulationError(
            f"unknown engine mode {resolved!r}; expected one of {ENGINE_MODES}"
        )
    return resolved


def engine_factory_for(mode: str | None = None) -> Callable[[], "Engine"]:
    """An ``engine_factory`` callable for a mode name (or the env default)."""
    resolved = resolve_engine_mode(mode)
    if resolved == "reference":
        return lambda: Engine(fast=False)
    if resolved == "fast":
        return Engine
    from repro.sim.batch import BatchEngine

    return BatchEngine


def engine_descriptor(mode: str | None = None) -> str:
    """Cache-key / metadata tag for the active engine configuration.

    ``reference`` and ``fast`` are backend-free; ``batch`` carries the
    resolved kernel backend (``batch+numpy`` / ``batch+numba``) so
    ledger records and cached artifacts from different backends never
    collide.
    """
    resolved = resolve_engine_mode(mode)
    if resolved != "batch":
        return resolved
    from repro.sim.kernels import backend_name

    return f"batch+{backend_name()}"


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class SimEvent:
    """A one-shot event that processes can wait on.

    An event starts *untriggered*; calling :meth:`succeed` stores its
    value and schedules its callbacks at the current simulation time.
    """

    __slots__ = ("_engine", "_callbacks", "_triggered", "_poolable", "value")

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine
        self._callbacks: list[Callable[[SimEvent], None]] = []
        self._triggered = False
        self._poolable = False
        self.value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    def succeed(self, value: Any = None) -> "SimEvent":
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        defer = self._engine._defer
        for callback in callbacks:
            defer(callback, self)
        return self

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        if self._poolable and (self._triggered or self._callbacks):
            # A second consumer means the event's identity outlives the
            # first resume, so it must never be reset into the pool.
            self._poolable = False
        if self._triggered:
            self._engine._defer(callback, self)
        else:
            self._callbacks.append(callback)


class Process(SimEvent):
    """A running generator; also an event that triggers when it returns."""

    __slots__ = ("_generator", "name")

    def __init__(
        self, engine: "Engine", generator: ProcessGenerator, name: str = ""
    ) -> None:
        super().__init__(engine)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        engine._defer(self._resume, None)

    def _resume(self, completed: SimEvent | None) -> None:
        try:
            value = completed.value if completed is not None else None
            target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            if completed is not None and completed._poolable:
                self._engine._release(completed)
            return
        if not isinstance(target, SimEvent):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected a SimEvent"
            )
        target.add_callback(self._resume)
        if completed is not None and completed._poolable:
            self._engine._release(completed)


class Engine:
    """The event loop: a time-ordered heap plus a same-instant deque.

    Args:
        fast: When True (the default) same-instant work is dispatched
            from a FIFO deque instead of the heap.  ``fast=False`` is
            the reference mode every fast-path change is checked
            against; both modes execute callbacks in exactly the same
            order.
    """

    #: Capability flag read by the simulation layers: the batch kernel
    #: (:class:`repro.sim.batch.BatchEngine`) overrides it so linksim /
    #: gpusim take their vectorized batch paths only under that engine.
    batch = False

    def __init__(self, fast: bool = True) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable, Any]] = []
        self._ready: deque[tuple[int, Callable, Any]] = deque()
        self._sequence = itertools.count()
        self._running = False
        self._fast = fast
        self._event_pool: list[SimEvent] = []
        self._housekeeping = 0
        self._events_scheduled = 0
        self._ready_dispatches = 0
        self._heap_dispatches = 0
        self._timeout_pool_hits = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def fast(self) -> bool:
        return self._fast

    @property
    def pending(self) -> int:
        """Number of scheduled callbacks not yet executed.

        Periodic observers (e.g. the link-timeline probe) use this to
        stop rescheduling themselves once they are the only thing left
        on the heap, so sampling never keeps a finished simulation
        alive.
        """
        return len(self._heap) + len(self._ready)

    @property
    def stats(self) -> dict[str, int]:
        """Kernel self-time counters (how hard the event loop worked).

        ``ready_dispatches`` / ``heap_dispatches`` split executed
        callbacks by path; ``events_scheduled`` counts every schedule
        call; ``timeout_pool_hits`` counts :meth:`sleep` events served
        from the recycle pool instead of freshly allocated.
        """
        return {
            "events_scheduled": self._events_scheduled,
            "ready_dispatches": self._ready_dispatches,
            "heap_dispatches": self._heap_dispatches,
            "timeout_pool_hits": self._timeout_pool_hits,
        }

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._events_scheduled += 1
        if delay == 0.0 and self._fast:
            self._ready.append((next(self._sequence), callback, args))
        else:
            heapq.heappush(
                self._heap, (self._now + delay, next(self._sequence), callback, args)
            )

    def every(self, interval: float, callback: Callable[[], None]) -> None:
        """Run ``callback()`` every ``interval`` seconds while real work remains.

        This is the sanctioned way to attach periodic *housekeeping*
        (telemetry pumps, timeline probes) to a run.  Each registered
        chain counts itself in ``_housekeeping``; a tick reschedules
        only while ``pending`` exceeds the number of outstanding
        housekeeping ticks.  A raw ``if engine.pending: reschedule``
        probe cannot tell another probe from real work, so two such
        probes would keep each other — and the run — alive forever;
        chains registered here all terminate once only housekeeping
        remains on the clock.

        Callbacks must be read-only with respect to simulation state:
        ticks consume sequence numbers but never reorder or retime real
        events, so results are unchanged by observation.
        """
        if interval <= 0:
            raise SimulationError(f"every() interval must be positive ({interval})")

        def tick() -> None:
            self._housekeeping -= 1
            callback()
            if self.pending > self._housekeeping:
                self._housekeeping += 1
                self.schedule(interval, tick)

        self._housekeeping += 1
        self.schedule(interval, tick)

    def _defer(self, callback: Callable, event: SimEvent | None) -> None:
        """Run ``callback(event)`` at the current instant.

        This is the triggered-event path of :meth:`SimEvent.succeed` /
        :meth:`SimEvent.add_callback`: semantically a zero-delay
        schedule, ordered FIFO (by the shared sequence counter) with
        everything else runnable now.
        """
        self._events_scheduled += 1
        if self._fast:
            self._ready.append((next(self._sequence), callback, (event,)))
        else:
            heapq.heappush(
                self._heap, (self._now, next(self._sequence), callback, (event,))
            )

    def _release(self, event: SimEvent) -> None:
        """Reset a poolable, consumed :meth:`sleep` event for reuse."""
        if event._triggered and not event._callbacks:
            event._triggered = False
            event.value = None
            self._event_pool.append(event)

    def event(self) -> SimEvent:
        """Create an untriggered event."""
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> SimEvent:
        """An event that triggers after ``delay`` seconds."""
        event = SimEvent(self)
        self.schedule(delay, event.succeed, value)
        return event

    def sleep(self, delay: float, value: Any = None) -> SimEvent:
        """A recyclable timeout for fire-and-forget pacing waits.

        Behaves like :meth:`timeout`, but the event object is returned
        to a pool (and reset) as soon as the single process waiting on
        it resumes.  Callers must not retain the event past the yield —
        in particular, never hand a sleep event to :meth:`any_of` /
        :meth:`all_of` result inspection.  Adding a second callback
        demotes the event to a normal one-shot, so misuse degrades to
        correct-but-unpooled behaviour.
        """
        event = self.pooled_event()
        self.schedule(delay, event.succeed, value)
        return event

    def pooled_event(self) -> SimEvent:
        """An untriggered recyclable event (the :meth:`sleep` pool).

        Callers own the same contract as :meth:`sleep`: the event is
        reset for reuse the moment its single waiting process resumes,
        so it must not be retained past the yield.  A second callback
        demotes it to a normal one-shot.
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
            self._timeout_pool_hits += 1
        else:
            event = SimEvent(self)
            event._poolable = True
        return event

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a process driving ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[SimEvent]) -> SimEvent:
        """An event that triggers when the *first* of ``events`` does.

        The triggering event itself is the value, so a waiter can tell
        which of several raced outcomes (e.g. a transfer completion vs
        a timeout) fired first.  Later completions are ignored.
        """
        events = list(events)
        if not events:
            raise SimulationError("any_of needs at least one event")
        done = self.event()

        def on_complete(event: SimEvent) -> None:
            if not done.triggered:
                done.succeed(event)

        for event in events:
            event.add_callback(on_complete)
        return done

    def all_of(self, events: Iterable[SimEvent]) -> SimEvent:
        """An event that triggers once every event in ``events`` has."""
        events = list(events)
        done = self.event()
        remaining = len(events)
        if remaining == 0:
            done.succeed([])
            return done
        results: list[Any] = [None] * remaining
        pending = [remaining]

        def on_complete(index: int, event: SimEvent) -> None:
            results[index] = event.value
            pending[0] -= 1
            if pending[0] == 0:
                done.succeed(results)

        for index, event in enumerate(events):
            event.add_callback(lambda ev, i=index: on_complete(i, ev))
        return done

    def run(self, until: float | None = None) -> float:
        """Process events until both queues drain (or ``until`` is hit).

        Returns the simulation time at which the run stopped.

        Dispatch order: among everything runnable at the current
        instant — the ready deque plus heap entries whose time equals
        ``now`` — the lowest sequence number runs first.  Time only
        advances once the ready deque is empty, so the order matches
        the all-heap reference mode exactly.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        ready = self._ready
        heap = self._heap
        try:
            while True:
                if ready:
                    if heap and heap[0][0] <= self._now and heap[0][1] < ready[0][0]:
                        time, _, callback, args = heapq.heappop(heap)
                        self._now = time
                        self._heap_dispatches += 1
                    else:
                        _, callback, args = ready.popleft()
                        self._ready_dispatches += 1
                    callback(*args)
                    continue
                if not heap:
                    break
                time = heap[0][0]
                if until is not None and time > until:
                    self._now = until
                    return self._now
                _, _, callback, args = heapq.heappop(heap)
                if time < self._now - 1e-12:
                    raise SimulationError("event heap went backwards in time")
                self._now = time
                self._heap_dispatches += 1
                callback(*args)
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        finally:
            self._running = False
