"""A compact process-based discrete-event simulation kernel.

The kernel follows the SimPy model: *processes* are Python generators
that ``yield`` events; the engine resumes a process when the event it
waits on triggers.  Only the features the shuffle simulator needs are
implemented, which keeps the kernel small enough to test exhaustively.

Example::

    engine = Engine()

    def worker():
        yield engine.timeout(2.0)
        return "done"

    process = engine.process(worker())
    engine.run()
    assert engine.now == 2.0 and process.value == "done"
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

ProcessGenerator = Generator["SimEvent", Any, Any]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class SimEvent:
    """A one-shot event that processes can wait on.

    An event starts *untriggered*; calling :meth:`succeed` stores its
    value and schedules its callbacks at the current simulation time.
    """

    __slots__ = ("_engine", "_callbacks", "_triggered", "value")

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine
        self._callbacks: list[Callable[[SimEvent], None]] = []
        self._triggered = False
        self.value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    def succeed(self, value: Any = None) -> "SimEvent":
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._engine.schedule(0.0, callback, self)
        return self

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        if self._triggered:
            self._engine.schedule(0.0, callback, self)
        else:
            self._callbacks.append(callback)


class Process(SimEvent):
    """A running generator; also an event that triggers when it returns."""

    __slots__ = ("_generator", "name")

    def __init__(
        self, engine: "Engine", generator: ProcessGenerator, name: str = ""
    ) -> None:
        super().__init__(engine)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        engine.schedule(0.0, self._resume, None)

    def _resume(self, completed: SimEvent | None) -> None:
        try:
            value = completed.value if completed is not None else None
            target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, SimEvent):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected a SimEvent"
            )
        target.add_callback(self._resume)


class Engine:
    """The event loop: a time-ordered heap of pending callbacks."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable, Any]] = []
        self._sequence = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled callbacks not yet executed.

        Periodic observers (e.g. the link-timeline probe) use this to
        stop rescheduling themselves once they are the only thing left
        on the heap, so sampling never keeps a finished simulation
        alive.
        """
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._heap, (self._now + delay, next(self._sequence), callback, args)
        )

    def event(self) -> SimEvent:
        """Create an untriggered event."""
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> SimEvent:
        """An event that triggers after ``delay`` seconds."""
        event = SimEvent(self)
        self.schedule(delay, event.succeed, value)
        return event

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a process driving ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[SimEvent]) -> SimEvent:
        """An event that triggers when the *first* of ``events`` does.

        The triggering event itself is the value, so a waiter can tell
        which of several raced outcomes (e.g. a transfer completion vs
        a timeout) fired first.  Later completions are ignored.
        """
        events = list(events)
        if not events:
            raise SimulationError("any_of needs at least one event")
        done = self.event()

        def on_complete(event: SimEvent) -> None:
            if not done.triggered:
                done.succeed(event)

        for event in events:
            event.add_callback(on_complete)
        return done

    def all_of(self, events: Iterable[SimEvent]) -> SimEvent:
        """An event that triggers once every event in ``events`` has."""
        events = list(events)
        done = self.event()
        remaining = len(events)
        if remaining == 0:
            done.succeed([])
            return done
        results: list[Any] = [None] * remaining
        pending = [remaining]

        def on_complete(index: int, event: SimEvent) -> None:
            results[index] = event.value
            pending[0] -= 1
            if pending[0] == 0:
                done.succeed(results)

        for index, event in enumerate(events):
            event.add_callback(lambda ev, i=index: on_complete(i, ev))
        return done

    def run(self, until: float | None = None) -> float:
        """Process events until the heap drains (or ``until`` is hit).

        Returns the simulation time at which the run stopped.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            while self._heap:
                time, _, callback, args = self._heap[0]
                if until is not None and time > until:
                    self._now = until
                    return self._now
                heapq.heappop(self._heap)
                if time < self._now - 1e-12:
                    raise SimulationError("event heap went backwards in time")
                self._now = time
                callback(*args)
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        finally:
            self._running = False
