"""Discrete-event simulation of the multi-GPU machine.

This package is the time-domain substrate of the reproduction: a small
process-based discrete-event kernel (:mod:`repro.sim.engine`), link
channels with FIFO queueing (:mod:`repro.sim.linksim`), GPU sender /
receiver / relay machinery with DMA-engine limits and credit-managed
routing buffers (:mod:`repro.sim.gpusim`), the shuffle simulator that
runs a flow matrix under a routing policy (:mod:`repro.sim.shuffle`) and
the analytic GPU kernel cost model (:mod:`repro.sim.compute`).
"""

from repro.sim.batch import BatchEngine
from repro.sim.engine import (
    ENGINE_MODES,
    Engine,
    Process,
    SimEvent,
    SimulationError,
    engine_descriptor,
    engine_factory_for,
    resolve_engine_mode,
)
from repro.sim.integrity import IntegrityStats, PacketTamperer, TransportIntegrity
from repro.sim.resources import RoutingBuffer, Store
from repro.sim.linksim import (
    ARBITRATION_MODES,
    LinkArbiter,
    LinkChannel,
    LinkStateBoard,
)
from repro.sim.compute import GpuComputeModel, GpuSpec, V100
from repro.sim.recovery import CrashCoordinator, RecoveryConfig, RetryPolicy
from repro.sim.shuffle import FlowMatrix, ShuffleConfig, ShuffleSimulator
from repro.sim.stats import LinkStats, RecoveryStats, ShuffleReport, bisection_cut
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "ARBITRATION_MODES",
    "BatchEngine",
    "CrashCoordinator",
    "ENGINE_MODES",
    "Engine",
    "FlowMatrix",
    "GpuComputeModel",
    "GpuSpec",
    "IntegrityStats",
    "LinkArbiter",
    "LinkChannel",
    "LinkStateBoard",
    "LinkStats",
    "PacketTamperer",
    "Process",
    "RecoveryConfig",
    "RecoveryStats",
    "RetryPolicy",
    "RoutingBuffer",
    "ShuffleConfig",
    "ShuffleReport",
    "ShuffleSimulator",
    "SimEvent",
    "SimulationError",
    "Store",
    "TraceEvent",
    "Tracer",
    "TransportIntegrity",
    "V100",
    "bisection_cut",
    "engine_descriptor",
    "engine_factory_for",
    "resolve_engine_mode",
]
