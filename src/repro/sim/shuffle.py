"""End-to-end simulation of the data-distribution step (paper §4).

Given a *flow matrix* — how many (possibly compressed) bytes each GPU
must send to each other GPU — the :class:`ShuffleSimulator` instantiates
link channels, per-GPU sender/receiver machinery and a routing policy,
runs the discrete-event engine to completion and returns a
:class:`~repro.sim.stats.ShuffleReport` with the timings, per-link
utilization and bisection statistics the paper's Figures 5-10 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.routing.base import RoutingContext, RoutingPolicy
from repro.sim.engine import Engine, SimulationError, engine_factory_for
from repro.sim.gpusim import GpuNode, Packet
from repro.sim.integrity import TransportIntegrity
from repro.sim.linksim import LinkChannel, LinkStateBoard
from repro.sim.recovery import (
    CrashCoordinator,
    RecoveryConfig,
    RecoveryManager,
    RetryPolicy,
)
from repro.sim.stats import LinkStats, ShuffleReport, bisection_cut
from repro.topology.machine import MachineTopology
from repro.topology.routes import RouteEnumerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

MB = 1024 * 1024


@dataclass(frozen=True)
class ShuffleConfig:
    """Tunables of the data-distribution machinery (paper defaults).

    ``packet_size=2 MB`` and ``batch_size=8`` are the values the paper
    profiles as cost-effective on the DGX-1 (§4.1, Figure 4).
    """

    packet_size: int = 2 * MB
    batch_size: int = 8
    header_bytes: int = 16
    #: Routing-buffer slots per neighbouring GPU at each receiver.
    buffer_slots: int = 64
    #: Credit re-synchronization latency when a sender runs dry (§4.1).
    buffer_sync_latency: float = 5e-6
    #: Queue-delay broadcast propagation latency (§4.2.2).
    broadcast_latency: float = 2e-6
    #: Relative change needed before a queue-delay update is broadcast.
    broadcast_threshold: float = 0.25
    #: Absolute queue-delay change (seconds) always worth broadcasting.
    broadcast_quantum: float = 50e-6
    #: Concurrent DMA engines (simultaneous outgoing transfers) per GPU.
    #: Six lets a V100 drive all of its NVLink ports at once, which is
    #: what NCCL-style ring/tree schedules rely on in practice.
    dma_engines: int = 6
    #: Packet-generation rate per GPU in bytes/s — the partition
    #: kernel's output rate; ``None`` = everything available at t=0.
    injection_rate: float | None = 110e9
    #: Packet-consumption rate per GPU (local partitioning input rate);
    #: ``None`` = consumed instantly.
    consume_rate: float | None = 110e9
    #: Cap on intermediate relay GPUs per route.
    max_intermediates: int = 3
    #: Allow idle (non-participating) GPUs of the machine to relay
    #: packets.  Off by default: relaying consumes routing-buffer
    #: memory on the relay GPU, which a join does not want to steal
    #: from GPUs processing other work (§4.1).
    allow_external_relays: bool = False
    #: Verified transport: stamp a crc32 checksum per packet at send,
    #: verify on delivery, NACK/retransmit corrupt packets and drop
    #: duplicates.  Off by default — the perf-gated configs keep their
    #: byte-identical digests; corruption-class fault plans without it
    #: are *detected* (not repaired) by the end-to-end integrity audit.
    verify_transport: bool = False

    def __post_init__(self) -> None:
        if self.packet_size < 1024:
            raise ValueError("packet_size below 1 KB is not supported")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.buffer_slots < self.batch_size:
            raise ValueError("buffer_slots must be >= batch_size")


@dataclass
class FlowMatrix:
    """Bytes each source GPU must deliver to each destination GPU."""

    flows: dict[tuple[int, int], int] = field(default_factory=dict)

    def add(self, src: int, dst: int, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("flow bytes must be non-negative")
        if src == dst or nbytes == 0:
            return
        key = (src, dst)
        self.flows[key] = self.flows.get(key, 0) + int(nbytes)

    def outgoing(self, src: int) -> dict[int, int]:
        return {
            dst: nbytes for (s, dst), nbytes in self.flows.items() if s == src
        }

    @property
    def total_bytes(self) -> int:
        return sum(self.flows.values())

    @property
    def gpus(self) -> tuple[int, ...]:
        ids = {src for src, _ in self.flows} | {dst for _, dst in self.flows}
        return tuple(sorted(ids))

    @staticmethod
    def all_to_all(gpu_ids: tuple[int, ...], bytes_per_flow: int) -> "FlowMatrix":
        matrix = FlowMatrix()
        for src in gpu_ids:
            for dst in gpu_ids:
                if src != dst:
                    matrix.add(src, dst, bytes_per_flow)
        return matrix


class ShuffleSimulator:
    """Runs one data-distribution step on a machine under a policy."""

    def __init__(
        self,
        machine: MachineTopology,
        gpu_ids: tuple[int, ...] | None = None,
        config: ShuffleConfig | None = None,
        tracer=None,
        observer=None,
        sampler=None,
        faults: "FaultPlan | None" = None,
        retry: RetryPolicy | None = None,
        recovery_bridge=None,
        recovery_config: RecoveryConfig | None = None,
        engine_factory=None,
        query_tag: "int | None" = None,
    ) -> None:
        self.machine = machine
        #: Builds the event kernel for each run.  ``None`` (the
        #: default) resolves the mode from ``REPRO_ENGINE`` — fast,
        #: batch, or reference — via
        #: :func:`repro.sim.engine.engine_factory_for`; pass e.g.
        #: ``lambda: Engine(fast=False)`` to pin the all-heap
        #: reference kernel (the equivalence tests do exactly that).
        self.engine_factory = (
            engine_factory if engine_factory is not None else engine_factory_for()
        )
        self.tracer = tracer
        #: Observability sink (spans/metrics); ``None`` = off.
        self.observer = observer
        #: Link-timeline sampler (repro.obs.analyze); ``None`` = off.
        self.sampler = sampler
        #: Fault plan injected into the run; ``None`` = healthy fabric.
        self.faults = faults
        #: Retry/backoff/fallback knobs (used only when faults are on).
        self.retry = retry or RetryPolicy()
        #: Join-level crash-recovery bridge (duck-typed: must expose
        #: ``on_gpu_dead(dead_gpu, survivors) -> FlowMatrix``).  When
        #: present *and* faults are injected, GPU crashes become real
        #: compute losses handled by a :class:`CrashCoordinator`;
        #: without it, crashes keep the legacy link-only semantics.
        self.recovery_bridge = recovery_bridge
        self.recovery_config = recovery_config or RecoveryConfig()
        #: The coordinator of the most recent run (telemetry access).
        self.coordinator: CrashCoordinator | None = None
        #: Serving-layer query id stamped onto every node this shuffle
        #: creates (see :class:`~repro.sim.gpusim.GpuNode.query_tag`);
        #: ``None`` = untagged single-tenant traffic.
        self.query_tag = query_tag
        self.gpu_ids = tuple(sorted(gpu_ids if gpu_ids is not None else machine.gpu_ids))
        if len(self.gpu_ids) < 2:
            raise ValueError("a shuffle needs at least two GPUs")
        unknown = set(self.gpu_ids) - set(machine.gpu_ids)
        if unknown:
            raise ValueError(f"unknown GPUs: {sorted(unknown)}")
        self.config = config or ShuffleConfig()

    def run(self, flows: FlowMatrix, policy: RoutingPolicy) -> ShuffleReport:
        """Simulate the shuffle to completion and report."""
        config = self.config
        foreign = set(flows.gpus) - set(self.gpu_ids)
        if foreign:
            raise ValueError(f"flows reference non-participating GPUs: {foreign}")
        engine = self.engine_factory()
        board = LinkStateBoard(
            engine,
            broadcast_latency=config.broadcast_latency,
            threshold=config.broadcast_threshold,
            quantum=config.broadcast_quantum,
            observer=self.observer,
        )
        links = {
            spec.link_id: LinkChannel(
                engine, spec, board, self.tracer, observer=self.observer
            )
            for spec in self.machine.links
        }
        if self.sampler is not None:
            self.sampler.bind(engine, links)
        relay_ids = (
            self.machine.gpu_ids if config.allow_external_relays else self.gpu_ids
        )
        enumerator = RouteEnumerator(
            self.machine,
            allowed_gpus=relay_ids,
            max_intermediates=config.max_intermediates,
        )
        conformance = (
            self.observer.conformance if self.observer is not None else None
        )
        if conformance is not None and not conformance.policy:
            conformance.policy = policy.name
        stream = self.observer.stream if self.observer is not None else None
        if stream is not None:
            from repro.obs.stream import LinkPump

            stream.emit(
                "run.started",
                t=engine.now,
                clock="sim",
                gpus=len(self.gpu_ids),
                links=len(links),
                policy=policy.name,
                faulted=self.faults is not None,
            )
            LinkPump(stream, engine, links)
        context = RoutingContext(
            engine=engine,
            machine=self.machine,
            enumerator=enumerator,
            links=links,
            board=board,
            num_gpus=len(self.gpu_ids),
            observer=self.observer,
            sampler=self.sampler,
            conformance=conformance,
        )
        recovery: RecoveryManager | None = None
        if self.faults is not None:
            import zlib

            recovery = RecoveryManager(
                engine,
                policy=self.retry,
                observer=self.observer,
                # Seeded like presets (crc32, not hash()) so identical
                # chaos runs replay identical retry-jitter schedules.
                jitter_seed=zlib.crc32(self.faults.name.encode("utf-8"))
                ^ self.faults.seed,
            )
        # The integrity layer exists when verification is requested or
        # the plan can tamper with packets (so the audit sees it);
        # healthy default runs skip it entirely — zero hot-path cost.
        integrity: TransportIntegrity | None = None
        plan_tampering = False
        if self.faults is not None:
            from repro.faults.plan import CORRUPTION_KINDS

            plan_tampering = any(
                event.kind in CORRUPTION_KINDS for event in self.faults.events
            )
        if config.verify_transport or plan_tampering:
            integrity = TransportIntegrity(
                engine, verify=config.verify_transport, observer=self.observer
            )
        coordinator: CrashCoordinator | None = None
        if recovery is not None and self.recovery_bridge is not None:
            coordinator = CrashCoordinator(
                engine,
                self.recovery_config,
                board,
                enumerator,
                recovery,
                packet_size=config.packet_size,
                header_bytes=config.header_bytes,
                bridge=self.recovery_bridge,
                observer=self.observer,
                integrity=integrity,
            )
        self.coordinator = coordinator
        delivered: list[Packet] = []
        nodes: dict[int, GpuNode] = {}
        for gpu_id in relay_ids:
            nodes[gpu_id] = GpuNode(
                engine,
                gpu_id,
                self.machine,
                links,
                policy,
                context,
                packet_size=config.packet_size,
                batch_size=config.batch_size,
                header_bytes=config.header_bytes,
                buffer_slots=config.buffer_slots,
                buffer_sync_latency=config.buffer_sync_latency,
                dma_engines=config.dma_engines,
                injection_rate=config.injection_rate,
                consume_rate=config.consume_rate,
                on_delivery=delivered.append,
                recovery=recovery,
                coordinator=coordinator,
                integrity=integrity,
                query_tag=self.query_tag,
            )
        for node in nodes.values():
            node.peers = nodes
        if coordinator is not None:
            coordinator.nodes = nodes
            coordinator.plan(self.gpu_ids, flows)
        injector = None
        if self.faults is not None:
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(self.faults)
            injector.bind(
                engine=engine,
                links=links,
                board=board,
                nodes=nodes,
                enumerator=enumerator,
                machine=self.machine,
                packet_size=config.packet_size,
                observer=self.observer,
                coordinator=coordinator,
                integrity=integrity,
            )
        for gpu_id in self.gpu_ids:
            outgoing = flows.outgoing(gpu_id)
            if outgoing:
                nodes[gpu_id].start_flows(outgoing)
        engine.run()
        if stream is not None:
            stream.emit("kernel", t=engine.now, clock="sim", stats=engine.stats)
            if conformance is not None:
                stream.emit(
                    "conformance", t=engine.now, clock="sim", **conformance.summary()
                )
            stream.emit("run.finished", t=engine.now, clock="sim", elapsed=engine.now)
            stream.flush()
        if conformance is not None and self.observer is not None:
            conformance.export_metrics(self.observer)
        report = self._build_report(
            engine,
            policy,
            flows,
            links,
            nodes,
            delivered,
            board,
            coordinator,
            integrity,
        )
        if injector is not None:
            report.faults_injected = injector.faults_injected
        if recovery is not None:
            report.packet_retries = recovery.retries
            report.packet_reroutes = recovery.reroutes
            report.packet_fallbacks = recovery.fallbacks
            report.packets_recovered = recovery.packets_recovered
        if self.observer is not None:
            metrics = self.observer.metrics
            metrics.gauge("shuffle.elapsed_seconds").set(report.elapsed)
            metrics.gauge("shuffle.payload_bytes").set(report.payload_bytes)
            metrics.gauge("shuffle.wire_bytes").set(report.wire_bytes)
            metrics.gauge("shuffle.buffer_syncs").set(report.buffer_sync_count)
            metrics.gauge("shuffle.board_broadcasts").set(
                report.board_broadcast_count
            )
            for name, value in engine.stats.items():
                metrics.gauge(f"engine.{name}").set(value)
            if report.recovery is not None:
                rec = report.recovery
                metrics.gauge("recovery.crashed_gpus").set(len(rec.crashed_gpus))
                metrics.gauge("recovery.detection_latency_seconds").set(
                    rec.max_detection_latency
                )
                metrics.gauge("recovery.reshuffled_bytes").set(
                    rec.reshuffled_bytes
                )
                metrics.gauge("recovery.host_resent_bytes").set(
                    rec.host_resent_bytes
                )
                metrics.gauge("recovery.checkpoint_restored_bytes").set(
                    rec.checkpoint_restored_bytes
                )
                metrics.gauge("recovery.bytes_discarded").set(
                    rec.bytes_discarded
                )
                metrics.gauge("recovery.elapsed_seconds").set(
                    rec.recovery_elapsed
                )
                metrics.gauge("recovery.time_share").set(
                    rec.recovery_share(report.elapsed)
                )
        return report

    def _build_report(
        self,
        engine: Engine,
        policy: RoutingPolicy,
        flows: FlowMatrix,
        links: dict[int, LinkChannel],
        nodes: dict[int, GpuNode],
        delivered: list[Packet],
        board: LinkStateBoard,
        coordinator: CrashCoordinator | None = None,
        integrity: TransportIntegrity | None = None,
    ) -> ShuffleReport:
        delivered_bytes = sum(node.stats.delivered_bytes for node in nodes.values())
        # With verification *off*, fault-made duplicate copies are
        # delivered twice on purpose (that is the corruption the audit
        # must catch) — excuse exactly those bytes from conservation.
        # Any residual mismatch is still a hard simulation error.
        dup_bytes = integrity.dup_payload_bytes if integrity is not None else 0
        crashed = coordinator.crashed_gpus if coordinator is not None else frozenset()
        if crashed:
            # Conservation under crash recovery: every *surviving*
            # destination must have received exactly the bytes it was
            # owed — original flows plus re-shuffled partitions.
            live_delivered = sum(
                node.stats.delivered_bytes
                for gpu_id, node in nodes.items()
                if gpu_id not in crashed
            )
            expected = coordinator.expected_live_bytes()
            if not expected <= live_delivered <= expected + dup_bytes:
                raise SimulationError(
                    f"crash recovery lost data: survivors received "
                    f"{live_delivered} of {expected} expected bytes"
                )
        elif delivered_bytes - dup_bytes != flows.total_bytes:
            raise SimulationError(
                f"shuffle stalled: delivered {delivered_bytes} of "
                f"{flows.total_bytes} bytes (possible buffer deadlock)"
            )
        # The data-distribution step ends when the last packet lands on
        # its destination GPU; draining the consumer (local
        # partitioning) continues overlapped and is reported separately.
        # Crashed GPUs stop counting: the join resumes on survivors.
        elapsed = max(
            (
                node.stats.last_delivery_time
                for gpu_id, node in nodes.items()
                if gpu_id not in crashed
            ),
            default=0.0,
        )
        consume_finish = max(
            (node.stats.last_consume_time for node in nodes.values()), default=0.0
        )
        link_stats = {
            link_id: LinkStats(
                spec=channel.spec,
                bytes_sent=channel.bytes_sent,
                busy_time=channel.busy_time,
                transfers=channel.transfers,
            )
            for link_id, channel in links.items()
            if channel.transfers > 0
        }
        wire_bytes = sum(channel.bytes_sent for channel in links.values())
        return ShuffleReport(
            policy_name=policy.name,
            num_gpus=len(self.gpu_ids),
            elapsed=elapsed,
            payload_bytes=flows.total_bytes,
            delivered_bytes=delivered_bytes,
            wire_bytes=wire_bytes,
            packets_delivered=len(delivered),
            hop_count_total=sum(packet.route.num_hops for packet in delivered),
            link_stats=link_stats,
            cut=bisection_cut(self.machine, self.gpu_ids),
            buffer_sync_count=sum(
                node.buffer_sync_count for node in nodes.values()
            ),
            board_broadcast_count=board.broadcast_count,
            sync_time_total=sum(node.stats.sync_time for node in nodes.values()),
            consume_finish_time=consume_finish,
            per_gpu_delivered={
                gpu_id: nodes[gpu_id].stats.delivered_bytes
                for gpu_id in self.gpu_ids
            },
            recovery=(
                coordinator.build_stats(elapsed) if crashed else None
            ),
            integrity=integrity.build_stats() if integrity is not None else None,
        )
