"""Analytic cost model for GPU kernels.

The join's compute phases (histogram build, radix partitioning, local
partitioning, probe) are all memory-bandwidth bound on a V100 at the
tuple counts the paper uses, so each kernel is modelled as

    time = launch_overhead + bytes_touched / (efficiency * HBM bandwidth)

with per-kernel efficiency factors capturing scatter/atomic penalties.
The factors below are calibrated so a single simulated V100 joins about
3 billion 8-byte tuples per second end to end — the paper's single-GPU
operating point in Figure 11 — and they are configuration knobs, not
hard-coded truths.

The model also covers the unified-memory page-fault behaviour that UMJ
(the unified-memory join baseline) suffers from (§2.1): page faults are
serviced by the driver while GPU threads contend on locked page tables,
so fault cost grows with the number of GPUs touching the same tables.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class GpuSpec:
    """Static hardware parameters of one GPU model."""

    name: str
    num_sms: int
    clock_hz: float
    memory_bandwidth: float  # bytes/s (HBM)
    memory_bytes: int
    shared_memory_per_sm: int  # usable bytes for the histogram kernel
    dma_engines: int
    kernel_launch_overhead: float = 5e-6

    def with_overrides(self, **kwargs) -> "GpuSpec":
        return replace(self, **kwargs)


#: The V100 of the DGX-1 (§5.1).  ``shared_memory_per_sm`` is the 32 KB
#: the histogram kernel can actually dedicate to histogram entries when
#: two thread blocks share a 64 KB SM allocation with working state,
#: which makes Eq. 1 produce the paper's 4,096-partition example.
V100 = GpuSpec(
    name="V100",
    num_sms=80,
    clock_hz=1.53e9,
    memory_bandwidth=900e9,
    memory_bytes=32 * GB,
    shared_memory_per_sm=32 * KB,
    dma_engines=3,
)


@dataclass(frozen=True)
class GpuComputeModel:
    """Kernel time estimates for one GPU.

    Efficiency factors are the achieved fraction of peak HBM bandwidth;
    scatter-heavy kernels achieve less than streaming ones.
    """

    spec: GpuSpec = V100
    histogram_efficiency: float = 0.55
    partition_efficiency: float = 0.16
    probe_efficiency: float = 0.28
    memcpy_efficiency: float = 0.90
    #: Unified-memory page parameters (UMJ baseline).
    page_size: int = 64 * KB
    page_fault_latency: float = 5e-6
    page_table_contention: float = 0.50

    def _stream_time(self, nbytes: float, efficiency: float) -> float:
        if nbytes < 0:
            raise ValueError(f"bytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return (
            self.spec.kernel_launch_overhead
            + nbytes / (efficiency * self.spec.memory_bandwidth)
        )

    # -- join kernels ----------------------------------------------------

    def histogram_time(self, num_tuples: float, key_bytes: int = 4) -> float:
        """Build a shared-memory histogram over ``num_tuples`` keys."""
        return self._stream_time(num_tuples * key_bytes, self.histogram_efficiency)

    def partition_time(
        self, num_tuples: float, tuple_bytes: int = 8, passes: int = 1
    ) -> float:
        """Radix-partition ``num_tuples`` (read + scattered write per pass)."""
        if passes < 0:
            raise ValueError("passes must be non-negative")
        per_pass = self._stream_time(
            num_tuples * tuple_bytes * 2, self.partition_efficiency
        )
        return per_pass * passes

    def probe_time(
        self,
        build_tuples: float,
        probe_tuples: float,
        matches: float,
        tuple_bytes: int = 8,
    ) -> float:
        """Join co-partitions: stream both sides, write match output."""
        touched = (build_tuples + probe_tuples + matches) * tuple_bytes
        return self._stream_time(touched, self.probe_efficiency)

    def memcpy_time(self, nbytes: float) -> float:
        """Local device-memory copy (packet unpack, buffer moves)."""
        return self._stream_time(nbytes, self.memcpy_efficiency)

    # -- unified memory (UMJ baseline) ------------------------------------

    def page_fault_time(self, remote_bytes: float, num_gpus: int) -> float:
        """Total fault-service time for ``remote_bytes`` of remote pages.

        Faults are serviced at page granularity.  The per-fault cost
        grows with GPU count because more threads contend on the locked
        page tables (§2.1, §5.3) — this is what makes UMJ on 8 GPUs
        slower than on one.
        """
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if remote_bytes <= 0:
            return 0.0
        num_faults = remote_bytes / self.page_size
        per_fault = self.page_fault_latency * (
            1.0 + self.page_table_contention * (num_gpus - 1)
        )
        return num_faults * per_fault

    # -- reporting helpers -------------------------------------------------

    def cycles(self, seconds: float) -> float:
        """Aggregate SM clock cycles elapsed in ``seconds`` on this GPU."""
        return seconds * self.spec.clock_hz * self.spec.num_sms
