"""Measurement containers for shuffle simulations.

Includes the bisection-utilization metric of Figure 8: utilization is
the rate of traffic that actually crossed the machine's minimum
balanced bisection, divided by that bisection's capacity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.sim.integrity import IntegrityStats
from repro.topology.links import LinkSpec
from repro.topology.machine import MachineTopology
from repro.topology.nodes import Node, gpu


@dataclass
class LinkStats:
    """Per-link accounting snapshot after a shuffle run."""

    spec: LinkSpec
    bytes_sent: int
    busy_time: float
    transfers: int

    def utilization(self, elapsed: float) -> float:
        """Fraction of the run this link spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def achieved_bandwidth(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return self.bytes_sent / elapsed


@dataclass(frozen=True)
class BisectionCut:
    """The minimum balanced bipartition of a GPU subset."""

    side_a: tuple[int, ...]
    side_b: tuple[int, ...]
    #: Max-flow capacity in each direction, bytes/s.
    capacity_ab: float
    capacity_ba: float
    #: Links whose endpoints straddle the cut, keyed by direction.
    crossing_ab: tuple[int, ...]
    crossing_ba: tuple[int, ...]

    @property
    def total_capacity(self) -> float:
        return self.capacity_ab + self.capacity_ba


def bisection_cut(
    machine: MachineTopology, gpu_ids: tuple[int, ...] | None = None
) -> BisectionCut:
    """Find the minimum balanced bisection and its crossing links.

    Memoized per machine instance: the topology is immutable and every
    shuffle report on the same machine/subset re-derives the same cut,
    which on 16 GPUs means re-pricing ``C(16, 8) / 2`` bipartitions.
    """
    ids = tuple(sorted(gpu_ids if gpu_ids is not None else machine.gpu_ids))
    if len(ids) < 2:
        raise ValueError("bisection needs at least two GPUs")
    cache: dict = machine._bisection_cut_cache
    cached = cache.get(ids)
    if cached is not None:
        return cached
    half = len(ids) // 2
    best: tuple[float, tuple[int, ...]] | None = None
    seen: set[frozenset[int]] = set()
    for side_a in itertools.combinations(ids, half):
        key = frozenset(side_a)
        other = frozenset(ids) - key
        if other in seen:
            continue
        seen.add(key)
        side_b = tuple(sorted(other))
        capacity = machine._cut_capacity(side_a, side_b)
        if best is None or capacity < best[0]:
            best = (capacity, side_a)
    assert best is not None
    side_a = best[1]
    side_b = tuple(sorted(set(ids) - set(side_a)))
    capacity_ab = machine._cut_capacity(side_a, side_b)
    capacity_ba = machine._cut_capacity(side_b, side_a)
    sides = _assign_node_sides(machine, side_a, side_b)
    crossing_ab: list[int] = []
    crossing_ba: list[int] = []
    for link in machine.links:
        src_side = sides.get(link.src)
        dst_side = sides.get(link.dst)
        if src_side is None or dst_side is None or src_side == dst_side:
            continue
        (crossing_ab if src_side == "a" else crossing_ba).append(link.link_id)
    cut = BisectionCut(
        side_a=side_a,
        side_b=side_b,
        capacity_ab=capacity_ab,
        capacity_ba=capacity_ba,
        crossing_ab=tuple(crossing_ab),
        crossing_ba=tuple(crossing_ba),
    )
    cache[ids] = cut
    return cut


def _assign_node_sides(
    machine: MachineTopology, side_a: tuple[int, ...], side_b: tuple[int, ...]
) -> dict[Node, str]:
    """Place switches and CPUs on the side holding most of their GPUs."""
    sides: dict[Node, str] = {}
    for gpu_id in side_a:
        sides[gpu(gpu_id)] = "a"
    for gpu_id in side_b:
        sides[gpu(gpu_id)] = "b"
    # Switches first (adjacent to GPUs), then CPUs (adjacent to switches).
    for _ in range(2):
        for node in machine.nodes:
            if node in sides:
                continue
            votes = {"a": 0, "b": 0}
            for link in machine.outgoing_links(node):
                neighbor_side = sides.get(link.dst)
                if neighbor_side is not None:
                    votes[neighbor_side] += 1
            if votes["a"] or votes["b"]:
                sides[node] = "a" if votes["a"] >= votes["b"] else "b"
    return sides


@dataclass
class RecoveryStats:
    """Crash-recovery accounting for one shuffle run.

    Produced by :class:`~repro.sim.recovery.CrashCoordinator` when at
    least one GPU crashed with join-level recovery enabled; absent
    (``None`` on the report) otherwise, including on every healthy run.
    """

    #: GPUs that crashed, and the engine times they crashed / were
    #: declared dead by the heartbeat monitor.
    crashed_gpus: tuple[int, ...]
    crashed_at: dict[int, float]
    declared_at: dict[int, float]
    #: Declaration minus crash time per dead GPU, seconds.
    detection_latency: dict[int, float]
    #: Bytes re-shuffled to the new owners of lost partitions.
    reshuffled_bytes: int = 0
    #: Bytes re-sent through the host pipe (dead-source remainders and
    #: in-flight losses whose source died before re-injection).
    host_resent_bytes: int = 0
    #: Re-shuffle bytes served from the dead GPU's host checkpoint
    #: instead of the original sources.
    checkpoint_restored_bytes: int = 0
    #: Received partition data discarded on crashed GPUs.
    bytes_discarded: int = 0
    #: Un-injected flow bytes to dead GPUs cancelled at their sources.
    bytes_cancelled: int = 0
    #: In-flight/queued bytes to dead GPUs dropped (reassigned instead).
    bytes_abandoned: int = 0
    #: Wall-clock from the first crash to the end of the shuffle.
    recovery_elapsed: float = 0.0

    @property
    def max_detection_latency(self) -> float:
        return max(self.detection_latency.values(), default=0.0)

    def recovery_share(self, elapsed: float) -> float:
        """Fraction of the shuffle spent in degraded (recovery) mode."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.recovery_elapsed / elapsed)


@dataclass
class ShuffleReport:
    """Everything a shuffle run measured.

    ``payload_bytes`` counts each flow byte once regardless of how many
    relay hops it took; throughput figures therefore compare fairly
    between direct and multi-hop routing.
    """

    policy_name: str
    num_gpus: int
    elapsed: float
    payload_bytes: int
    delivered_bytes: int
    wire_bytes: int
    packets_delivered: int
    hop_count_total: int
    link_stats: dict[int, LinkStats]
    cut: BisectionCut
    buffer_sync_count: int
    board_broadcast_count: int
    sync_time_total: float = 0.0
    consume_finish_time: float = 0.0
    per_gpu_delivered: dict[int, int] = field(default_factory=dict)
    #: Fault-injection / recovery accounting (zero on healthy runs).
    faults_injected: int = 0
    packet_retries: int = 0
    packet_reroutes: int = 0
    packet_fallbacks: int = 0
    packets_recovered: int = 0
    #: Crash-recovery accounting; ``None`` unless a GPU crashed with
    #: join-level recovery enabled.
    recovery: RecoveryStats | None = None
    #: Verified-transport accounting; ``None`` unless the integrity
    #: layer was active (verification on, or corruption faults planned).
    integrity: IntegrityStats | None = None

    @property
    def throughput(self) -> float:
        """Aggregate shuffle throughput in bytes/s (Figure 6/7 metric)."""
        if self.elapsed <= 0:
            return 0.0
        return self.payload_bytes / self.elapsed

    @property
    def average_hops(self) -> float:
        """Mean GPU-level hops per delivered packet."""
        if self.packets_delivered == 0:
            return 0.0
        return self.hop_count_total / self.packets_delivered

    @property
    def bisection_utilization(self) -> float:
        """Figure 8 metric: achieved cross-bisection rate / capacity."""
        if self.elapsed <= 0:
            return 0.0
        crossing = set(self.cut.crossing_ab) | set(self.cut.crossing_ba)
        crossed_bytes = sum(
            stats.bytes_sent
            for link_id, stats in self.link_stats.items()
            if link_id in crossing
        )
        capacity = self.cut.total_capacity
        if capacity <= 0:
            return 0.0
        return min(1.0, crossed_bytes / self.elapsed / capacity)

    def _directional_utilization(
        self, crossing: tuple[int, ...], capacity: float
    ) -> float:
        if self.elapsed <= 0 or capacity <= 0:
            return 0.0
        crossed_bytes = sum(
            stats.bytes_sent
            for link_id, stats in self.link_stats.items()
            if link_id in set(crossing)
        )
        return min(1.0, crossed_bytes / self.elapsed / capacity)

    @property
    def bisection_utilization_ab(self) -> float:
        """Figure 8 metric restricted to the a->b crossing direction."""
        return self._directional_utilization(
            self.cut.crossing_ab, self.cut.capacity_ab
        )

    @property
    def bisection_utilization_ba(self) -> float:
        """Figure 8 metric restricted to the b->a crossing direction."""
        return self._directional_utilization(
            self.cut.crossing_ba, self.cut.capacity_ba
        )

    def link_utilization(self, link_id: int) -> float:
        return self.link_stats[link_id].utilization(self.elapsed)
