"""Array-calendar event kernel: batch dispatch behind ``engine_factory``.

:class:`BatchEngine` is the third engine mode (after the all-heap
reference and the ready-deque fast path): pending timers live in a flat
sorted calendar and move to the ready deque a whole same-instant cohort
at a time, through the compiled-kernel seam in :mod:`repro.sim.kernels`.

Data layout
-----------

* **Sorted run** — ``(time, seq)`` pairs ascending, consumed from a
  moving head.  Draining the head cohort replaces per-event
  ``heappop`` calls with one pass over the run.  Parallel
  ``times``/``seqs`` numpy mirrors are rebuilt by every vectorized
  merge and feed the backend kernels.
* **Append buffer** — where ``schedule()`` lands.  When the ready
  deque drains, the buffer is folded into the sorted run: a handful of
  deferred timers insert scalar-wise (binary insertion beats array
  round-trips at that size), while a buffer past the vectorization
  threshold is merged with a single ``lexsort`` pass — the *heap
  drain* kernel.  High-fan-out workloads (wide same-instant bursts)
  spend their time in the kernel path; trickle workloads never pay
  array overhead for two-element merges.
* **Payload map** — ``{seq: (callback, args)}``.  Sequence numbers are
  unique and already ride every entry, so merges never touch Python
  callback objects, only primitive pairs.
* **Ready deque** — identical to the fast engine: same-instant work in
  FIFO sequence order.

Order equivalence
-----------------

The dispatch contract is unchanged: among everything runnable *now*,
the lowest global sequence number runs first, and time advances only
when the ready deque is empty.  Cohort extraction preserves that
order because

1. cohorts are extracted only when the ready deque is empty, so the
   extracted entries (ascending seq) become the entire deque;
2. any work deferred *during* the cohort drew a later sequence number
   than every cohort member, so FIFO appends keep global seq order;
3. a timer scheduled mid-cohort for ``time <= now`` is caught by the
   same head-vs-deque comparison the fast engine performs per
   dispatch (``_next_key`` mirrors ``heap[0]``).

Both merge paths produce the same calendar: ``(time, seq)`` keys are
unique (one sequence counter), so the sorted order is total and
insertion sort and lexsort cannot disagree.
``tests/sim/test_batch_equivalence.py`` holds the three engine modes
to byte-identical reports, digests and telemetry.

:meth:`Engine.sleep` additionally refills its recycle pool a chunk at
a time, and :meth:`~repro.sim.linksim.LinkChannel.transmit` recycles
transfer-completion events through the same pool when driven by this
engine (``engine.batch`` is the capability flag the simulation layers
key off).
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Any, Callable

import numpy as np

from repro.sim.engine import Engine, SimEvent, SimulationError
from repro.sim.kernels import KernelBackend, resolve_backend

#: Same-time entries scanned scalar-wise before handing the cohort
#: boundary search to a binary search (kernel or bisect).
_SCAN_LIMIT = 4

#: Buffered timers below this merge by binary insertion; at or above
#: it the whole buffer folds in with one lexsort kernel pass.
_VECTOR_THRESHOLD = 16

#: Timeout-pool refill chunk (batched pool maintenance).
_POOL_CHUNK = 32

#: Upper bound for any sequence number in cohort bisection.
_INF = float("inf")

_EMPTY_TIMES = np.empty(0, dtype=np.float64)
_EMPTY_SEQS = np.empty(0, dtype=np.int64)


class BatchEngine(Engine):
    """Event loop with a flat sorted calendar and batched dispatch."""

    #: Capability flag: simulation layers (linksim/gpusim) take their
    #: vectorized batch paths when the driving engine sets this.
    batch = True

    def __init__(self, backend: str | None = None) -> None:
        super().__init__(fast=True)
        self._kernels: KernelBackend = resolve_backend(backend)
        #: Sorted calendar of ``(time, seq)`` pairs, live from ``_head``.
        self._run: list[tuple[float, int]] = []
        self._head = 0
        #: Numpy mirrors of ``_run`` for the backend kernels; fresh
        #: only when the last merge was the vectorized one (scalar
        #: insertions invalidate them — head advances do not).
        self._run_times = _EMPTY_TIMES
        self._run_seqs = _EMPTY_SEQS
        self._arrays_fresh = False
        #: Unsorted append buffer (folded in by the next merge).
        self._buf: list[tuple[float, int]] = []
        #: ``{seq: (callback, args)}`` for every pending timer.
        self._timer_payload: dict[int, tuple[Callable, Any]] = {}
        #: Key of the earliest pending timer, mirroring ``heap[0]``.
        self._next_key: tuple[float, int] | None = None
        self._batch_drains = 0
        self._max_batch = 0
        self._vector_merges = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    @property
    def backend(self) -> str:
        """Name of the kernel backend in use (``numpy`` / ``numba``)."""
        return self._kernels.name

    @property
    def pending(self) -> int:
        return (len(self._run) - self._head) + len(self._buf) + len(self._ready)

    @property
    def stats(self) -> dict[str, int]:
        """Kernel counters; see :attr:`Engine.stats`.

        ``heap_dispatches`` counts timers drained from the calendar and
        ``ready_dispatches`` same-instant deferrals, so the totals line
        up with the fast engine's; ``batch_drains`` / ``max_batch``
        describe how much same-instant work each drain amortized, and
        ``vector_merges`` how many merges crossed the lexsort-kernel
        threshold.
        """
        base = super().stats
        base["batch_drains"] = self._batch_drains
        base["max_batch"] = self._max_batch
        base["vector_merges"] = self._vector_merges
        return base

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._events_scheduled += 1
        seq = next(self._sequence)
        if delay == 0.0:
            self._ready_dispatches += 1
            self._ready.append((seq, callback, args))
            return
        time = self._now + delay
        self._buf.append((time, seq))
        self._timer_payload[seq] = (callback, args)
        next_key = self._next_key
        if next_key is None or time < next_key[0]:
            self._next_key = (time, seq)

    def _defer(self, callback: Callable, event: SimEvent | None) -> None:
        self._events_scheduled += 1
        self._ready_dispatches += 1
        self._ready.append((next(self._sequence), callback, (event,)))

    # ------------------------------------------------------------------
    # Calendar maintenance (merge + cohort extraction)
    # ------------------------------------------------------------------

    def _merge(self) -> None:
        """Fold the append buffer into the sorted run."""
        buf = self._buf
        if not buf:
            return
        run = self._run
        head = self._head
        if len(buf) < _VECTOR_THRESHOLD:
            if head:
                del run[:head]
                self._head = 0
            for pair in buf:
                insort(run, pair)
            self._arrays_fresh = False
            buf.clear()
            return
        # Vectorized path: one lexsort pass over live run + buffer.
        buf_times = np.array([pair[0] for pair in buf], dtype=np.float64)
        buf_seqs = np.array([pair[1] for pair in buf], dtype=np.int64)
        if head < len(run):
            if self._arrays_fresh:
                live_times = self._run_times[head:]
                live_seqs = self._run_seqs[head:]
            else:
                live = run[head:]
                live_times = np.array([pair[0] for pair in live], dtype=np.float64)
                live_seqs = np.array([pair[1] for pair in live], dtype=np.int64)
            times = np.concatenate([live_times, buf_times])
            seqs = np.concatenate([live_seqs, buf_seqs])
        else:
            times, seqs = buf_times, buf_seqs
        order = self._kernels.merge_order(times, seqs)
        self._run_times = times[order]
        self._run_seqs = seqs[order]
        self._run = list(zip(self._run_times.tolist(), self._run_seqs.tolist()))
        self._head = 0
        self._arrays_fresh = True
        self._vector_merges += 1
        buf.clear()

    def _refresh_next_key(self) -> None:
        head = self._head
        run = self._run
        self._next_key = run[head] if head < len(run) else None

    def _pop_single(self) -> tuple[float, Callable, Any]:
        """Pop the single earliest timer (the cross-check dispatch path)."""
        self._merge()
        head = self._head
        time, seq = self._run[head]
        self._head = head + 1
        self._refresh_next_key()
        self._heap_dispatches += 1
        callback, args = self._timer_payload.pop(seq)
        return time, callback, args

    def _extract_cohort(self) -> float:
        """Move the head same-instant cohort onto the ready deque.

        Returns the cohort's timestamp.  Entries land in ascending
        sequence order, which together with the FIFO deque reproduces
        the reference dispatch order exactly.  Narrow cohorts resolve
        with a couple of scalar compares; wide ones fall through to the
        backend's binary-search kernel (or plain bisection when the
        array mirrors are stale).
        """
        self._merge()
        run = self._run
        head = self._head
        size = len(run)
        time = run[head][0]
        end = head + 1
        scan = head + _SCAN_LIMIT
        while end < size and end < scan and run[end][0] == time:
            end += 1
        if end < size and end == scan and run[end][0] == time:
            if self._arrays_fresh:
                end = self._kernels.cohort_end(self._run_times, head, size)
            else:
                end = bisect_right(run, (time, _INF), head, size)
        payload = self._timer_payload
        ready = self._ready
        for index in range(head, end):
            seq = run[index][1]
            callback, args = payload.pop(seq)
            ready.append((seq, callback, args))
        self._head = end
        self._refresh_next_key()
        count = end - head
        self._heap_dispatches += count
        self._batch_drains += 1
        if count > self._max_batch:
            self._max_batch = count
        return time

    # ------------------------------------------------------------------
    # Timeout-pool maintenance (batched)
    # ------------------------------------------------------------------

    def pooled_event(self) -> SimEvent:
        """A recyclable untriggered event; the pool refills in chunks."""
        pool = self._event_pool
        if not pool:
            for _ in range(_POOL_CHUNK):
                event = SimEvent(self)
                event._poolable = True
                pool.append(event)
        else:
            self._timeout_pool_hits += 1
        return pool.pop()

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        ready = self._ready
        try:
            while True:
                if ready:
                    next_key = self._next_key
                    if (
                        next_key is not None
                        and next_key[0] <= self._now
                        and next_key[1] < ready[0][0]
                    ):
                        time, callback, args = self._pop_single()
                        self._now = time
                    else:
                        _, callback, args = ready.popleft()
                    callback(*args)
                    continue
                next_key = self._next_key
                if next_key is None:
                    break
                time = next_key[0]
                if until is not None and time > until:
                    self._now = until
                    return self._now
                if time < self._now - 1e-12:
                    raise SimulationError("event calendar went backwards in time")
                self._now = self._extract_cohort()
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        finally:
            self._running = False
