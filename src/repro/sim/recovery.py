"""Packet-loss recovery: bounded retry, re-route, host-staged fallback.

When faults are injected (:mod:`repro.faults`), packets can be lost —
a link goes down mid-transfer, or a receiver's routing-buffer credits
never free because the GPU behind them crashed.  The recovery layer
keeps the shuffle *live* under those conditions:

* a lost packet is retried after an exponential-backoff delay, bounded
  by :attr:`RetryPolicy.max_attempts`;
* each retry re-asks the :class:`~repro.routing.base.RoutingPolicy`
  for a route from the packet's *current* GPU, so ARM naturally routes
  around degraded or dead links;
* when no route exists at all (``UnroutableError``) or the retry
  budget is exhausted, the packet degrades gracefully to a
  *host-staged fallback*: the CPU relays it over PCIe at a recorded
  (much slower) rate instead of the join hanging or dropping data.

All recovery events are emitted as ``repro.obs`` instants and counters
so chaos runs can be audited in Chrome traces and ``repro analyze``.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from repro.obs import Observer
    from repro.sim.engine import Engine
    from repro.sim.gpusim import GpuNode, Packet
    from repro.sim.integrity import TransportIntegrity
    from repro.sim.linksim import LinkStateBoard
    from repro.sim.shuffle import FlowMatrix
    from repro.sim.stats import RecoveryStats
    from repro.topology.routes import RouteEnumerator


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on the retry/backoff/fallback behaviour.

    The total extra delay a packet can accrue across its full retry
    budget is bounded by :meth:`total_delay_bound`, which tests assert
    stays finite and small relative to a shuffle.
    """

    #: Transmission attempts before falling back to host staging
    #: (the first attempt counts, so 4 = 1 try + 3 retries).
    max_attempts: int = 4
    #: Backoff before the first retry, seconds.
    base_delay: float = 100e-6
    #: Multiplier between consecutive retry delays.
    backoff: float = 2.0
    #: Cap on any single retry delay, seconds.
    max_delay: float = 5e-3
    #: How long a sender waits on routing-buffer credits before treating
    #: the receiver as unresponsive and re-routing (covers crashed GPUs
    #: whose buffers will never drain).
    acquire_timeout: float = 20e-3
    #: Host-staged fallback relay bandwidth (CPU copy through sysmem,
    #: pinned-buffer PCIe rate) and per-packet latency.
    host_bandwidth: float = 5e9
    host_latency: float = 50e-6
    #: Retry-delay jitter fraction in [0, 1): each backoff is scaled by
    #: a factor in ``[1 - jitter/2, 1 + jitter/2)``.  The jitter rng is
    #: seeded from the fault plan (crc32 of its name ^ its seed), never
    #: from wall clock or global state, so two identical chaos runs
    #: replay the identical retry schedule.  0 (the default) draws
    #: nothing and leaves every existing digest byte-identical.
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1 (delays must not shrink)")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def retry_delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based, no jitter)."""
        return min(self.max_delay, self.base_delay * self.backoff**attempt)

    def total_delay_bound(self) -> float:
        """Upper bound on backoff delay summed over the retry budget."""
        return sum(self.retry_delay(i) for i in range(self.max_attempts - 1))


@dataclass
class RecoveryManager:
    """Shared recovery state and accounting for one shuffle run.

    The per-packet recovery logic lives in :class:`GpuNode` (it needs
    the node's queues and routing context); this object centralizes the
    policy knobs, the serialized host-fallback path and the counters
    that surface in :class:`~repro.sim.stats.ShuffleReport`.
    """

    engine: "Engine"
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    observer: "Observer | None" = None
    #: Seed of the (lazy) retry-jitter rng; derived from the fault plan
    #: by the shuffle driver so identical runs jitter identically.
    jitter_seed: int = 0

    #: Recovery counters (copied onto the shuffle report).
    retries: int = 0
    reroutes: int = 0
    fallbacks: int = 0
    packets_recovered: int = 0

    #: The host relay is one staged pipe per destination GPU: fallback
    #: transfers to the same GPU serialize FIFO instead of completing
    #: in parallel at an unrealistic aggregate rate.
    _host_free_at: dict[int, float] = field(default_factory=dict)
    _jitter_rng: "random.Random | None" = field(default=None, repr=False)

    def retry_delay(self, attempt: int) -> float:
        """The policy backoff for ``attempt``, with seeded jitter applied.

        With ``policy.jitter == 0`` (the default) the rng is never even
        created, so the schedule — and every digest — is exactly the
        un-jittered policy value.
        """
        delay = self.policy.retry_delay(attempt)
        if self.policy.jitter > 0.0:
            if self._jitter_rng is None:
                import random

                self._jitter_rng = random.Random(self.jitter_seed)
            delay *= 1.0 + self.policy.jitter * (self._jitter_rng.random() - 0.5)
        return delay

    # ------------------------------------------------------------------
    # Event accounting
    # ------------------------------------------------------------------

    def record_retry(self, node: "GpuNode", packet: "Packet", *, reason: str,
                     rerouted: bool) -> None:
        self.retries += 1
        if rerouted:
            self.reroutes += 1
        if self.observer is not None:
            self.observer.metrics.counter("faults.retries").inc()
            if rerouted:
                self.observer.metrics.counter("faults.reroutes").inc()
            self.observer.instant(
                "packet.retry",
                self.engine.now,
                track=f"gpu{node.gpu_id}",
                category="fault",
                src=packet.flow_src,
                dst=packet.flow_dst,
                attempt=packet.attempts,
                reason=reason,
                route=str(packet.route),
                rerouted=rerouted,
            )
            if self.observer.stream is not None:
                self.observer.stream.emit(
                    "packet.retry",
                    t=self.engine.now,
                    clock="sim",
                    src=packet.flow_src,
                    dst=packet.flow_dst,
                    attempt=packet.attempts,
                    reason=reason,
                    rerouted=rerouted,
                )

    def record_recovered(self, packet: "Packet") -> None:
        self.packets_recovered += 1
        if self.observer is not None:
            self.observer.metrics.counter("faults.packets_recovered").inc()
            if self.observer.stream is not None:
                self.observer.stream.emit(
                    "packet.recovered",
                    t=self.engine.now,
                    clock="sim",
                    src=packet.flow_src,
                    dst=packet.flow_dst,
                )

    # ------------------------------------------------------------------
    # Host-staged fallback (graceful degradation)
    # ------------------------------------------------------------------

    def host_transfer(self, destination: "GpuNode", packet: "Packet") -> float:
        """Schedule delivery of ``packet`` through the serialized host pipe.

        The transfer is charged ``host_latency + bytes/host_bandwidth``
        and serializes FIFO with other host traffic to the same
        destination GPU.  Returns the simulated finish time.  Shared by
        the per-packet fallback path and the crash coordinator's
        re-shuffle/restore traffic, so both degrade at the same
        (recorded, much slower) host rate.
        """
        now = self.engine.now
        start = max(now, self._host_free_at.get(packet.flow_dst, 0.0))
        service = self.policy.host_latency + (
            packet.wire_bytes / self.policy.host_bandwidth
        )
        finish = start + service
        self._host_free_at[packet.flow_dst] = finish
        self.engine.schedule(finish - now, destination.receive_fallback, packet)
        return finish

    def fallback(self, node: "GpuNode", packet: "Packet", *, reason: str) -> None:
        """Relay ``packet`` to its destination through host memory.

        Delivery then follows the normal path so byte accounting and
        correctness checks stay exact.
        """
        self.fallbacks += 1
        now = self.engine.now
        packet.fallback = True
        destination = node.peers[packet.flow_dst]
        finish = self.host_transfer(destination, packet)
        if self.observer is not None:
            self.observer.metrics.counter("faults.fallbacks").inc()
            self.observer.instant(
                "packet.fallback",
                now,
                track=f"gpu{node.gpu_id}",
                category="fault",
                src=packet.flow_src,
                dst=packet.flow_dst,
                attempts=packet.attempts,
                reason=reason,
                penalty_seconds=finish - now,
            )
            if self.observer.stream is not None:
                self.observer.stream.emit(
                    "packet.fallback",
                    t=now,
                    clock="sim",
                    src=packet.flow_src,
                    dst=packet.flow_dst,
                    reason=reason,
                    penalty_seconds=finish - now,
                )


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs of the crash-detection / crash-recovery protocol.

    Detection is heartbeat-based: every participating GPU stamps a
    liveness epoch onto the :class:`~repro.sim.linksim.LinkStateBoard`
    broadcasts it already emits, once per ``heartbeat_interval``.  A GPU
    whose heartbeat is ``miss_budget`` intervals stale is declared dead
    (crash), while a straggler — slow but still beating — is never
    declared.  Worst-case detection latency is therefore
    ``(miss_budget + 1) * heartbeat_interval`` plus one broadcast
    propagation delay.

    ``checkpoint_interval`` optionally enables a lightweight host-side
    checkpoint of each GPU's per-partition receive state: every
    interval, the bytes received since the previous tick are appended to
    a host log.  After a crash, data checkpointed by the dead GPU is
    *restored* from the host to the new partition owners instead of
    being re-shuffled from the sources, bounding re-shuffle volume at
    the cost of steady-state checkpoint traffic.  ``None`` disables
    checkpointing (every lost byte is re-shuffled).
    """

    heartbeat_interval: float = 250e-6
    miss_budget: int = 4
    checkpoint_interval: float | None = None

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.miss_budget < 1:
            raise ValueError("miss_budget must be >= 1")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive (or None)")


class CrashCoordinator:
    """Sim-side bookkeeping for GPU crashes: detection and re-shuffle.

    One coordinator is attached to a shuffle when the fault plan can
    crash GPUs *and* join-level recovery is enabled.  It owns:

    * **detection** — on a crash it freezes the victim's heartbeat and
      schedules the declaration at the moment the miss budget runs out
      on the engine clock (the deterministic equivalent of a monitor
      polling :meth:`LinkStateBoard.last_heartbeat`);
    * **byte conservation** — planned/injected bytes per flow and
      expected bytes per destination, updated through cancellation,
      orphaned packets and re-shuffle, so the shuffle can assert that
      every surviving destination received exactly what it was owed;
    * **resumption** — at declaration it removes the dead GPU from
      route enumeration, fails its buffers, cancels and purges traffic
      involving it, re-sends lost in-flight data, and asks the
      join-level ``bridge`` (:class:`repro.core.recovery.
      JoinRecoveryCoordinator`) for the re-shuffle flows that move the
      dead GPU's partitions to their new owners.

    The coordinator is pure simulation bookkeeping: when it is absent
    (every healthy run, and legacy bridge-less chaos runs) none of its
    hooks exist on the hot path.
    """

    def __init__(
        self,
        engine: "Engine",
        config: RecoveryConfig,
        board: "LinkStateBoard",
        enumerator: "RouteEnumerator",
        recovery: RecoveryManager,
        *,
        packet_size: int,
        header_bytes: int,
        bridge: "object | None" = None,
        observer: "Observer | None" = None,
        integrity: "TransportIntegrity | None" = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.board = board
        self.enumerator = enumerator
        self.recovery = recovery
        self.packet_size = packet_size
        self.header_bytes = header_bytes
        #: Verified-transport state; host-sent packets are stamped too
        #: so the receiver-side dedup window covers every path.
        self.integrity = integrity
        #: Join-level recovery coordinator (duck-typed: must expose
        #: ``on_gpu_dead(dead_gpu, survivors) -> FlowMatrix``); ``None``
        #: means lost partitions are not re-owned (shuffle-only runs).
        self.bridge = bridge
        self.observer = observer
        self.nodes: dict[int, "GpuNode"] = {}
        self._participants: tuple[int, ...] = ()
        #: Flow-level books: bytes planned / injected per (src, dst).
        self._planned: dict[tuple[int, int], int] = {}
        self._injected: dict[tuple[int, int], int] = {}
        #: Bytes each destination is still owed (conservation check).
        self._expected_by_dst: dict[int, int] = {}
        self._crashed: dict[int, float] = {}
        self._declared: dict[int, float] = {}
        #: Orphaned bytes awaiting re-injection at live sources.
        self._pending_resend: dict[int, dict[int, int]] = {}
        #: Host-checkpoint delivery log: gpu -> (times, cumulative bytes).
        self._delivery_log: dict[int, tuple[list[float], list[int]]] = {}
        self._sequence = 0
        # Telemetry.
        self.reshuffled_bytes = 0
        self.host_resent_bytes = 0
        self.checkpoint_restored_bytes = 0
        self.bytes_discarded = 0
        self.bytes_cancelled = 0
        self.bytes_abandoned = 0
        self._first_crash_at: float | None = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def checkpointing(self) -> bool:
        return self.config.checkpoint_interval is not None

    @property
    def crashed_gpus(self) -> frozenset[int]:
        return frozenset(self._crashed)

    @property
    def dead_gpus(self) -> frozenset[int]:
        """GPUs declared dead (crash detected and recovery triggered)."""
        return frozenset(self._declared)

    def is_crashed(self, gpu_id: int) -> bool:
        return gpu_id in self._crashed

    def is_dead(self, gpu_id: int) -> bool:
        return gpu_id in self._declared

    def survivors(self) -> tuple[int, ...]:
        return tuple(g for g in self._participants if g not in self._declared)

    def expected_live_bytes(self) -> int:
        """Bytes owed to destinations that are still alive."""
        return sum(
            nbytes
            for dst, nbytes in self._expected_by_dst.items()
            if dst not in self._crashed
        )

    # ------------------------------------------------------------------
    # Books (fed by GpuNode and the injector)
    # ------------------------------------------------------------------

    def plan(self, participants: tuple[int, ...], flows) -> None:
        """Seed the books from the initial flow matrix."""
        self._participants = tuple(sorted(participants))
        for gpu_id in self._participants:
            self._expected_by_dst.setdefault(gpu_id, 0)
            # Everybody is alive and beating when the shuffle starts.
            self.board.record_heartbeat(gpu_id, 0.0)
        for src in self._participants:
            for dst, nbytes in sorted(flows.outgoing(src).items()):
                self._planned[(src, dst)] = (
                    self._planned.get((src, dst), 0) + int(nbytes)
                )
                self._expected_by_dst[dst] = (
                    self._expected_by_dst.get(dst, 0) + int(nbytes)
                )

    def note_injected(self, src: int, dst: int, nbytes: int) -> None:
        key = (src, dst)
        self._injected[key] = self._injected.get(key, 0) + nbytes

    def note_delivery(self, gpu_id: int, nbytes: int) -> None:
        """Append to the (host-checkpointed) receive log of ``gpu_id``."""
        times, cums = self._delivery_log.setdefault(gpu_id, ([], []))
        total = (cums[-1] if cums else 0) + nbytes
        times.append(self.engine.now)
        cums.append(total)

    def checkpointed_bytes(self, gpu_id: int) -> int:
        """Received bytes of ``gpu_id`` safe in the last host checkpoint."""
        interval = self.config.checkpoint_interval
        if interval is None or gpu_id not in self._crashed:
            return 0
        log = self._delivery_log.get(gpu_id)
        if log is None:
            return 0
        tick = math.floor(self._crashed[gpu_id] / interval) * interval
        times, cums = log
        index = bisect_right(times, tick) - 1
        return cums[index] if index >= 0 else 0

    def orphaned(self, packet: "Packet") -> None:
        """Account for a packet lost with a crashed GPU.

        Called when a crashed GPU drains its queues, or when a packet
        destined to a dead GPU is dropped by a live sender.  Bytes bound
        for a dead destination are *abandoned* (their partitions get
        re-shuffled wholesale); bytes bound for a live destination are
        re-sent — from the source GPU over the fabric when it is alive,
        through the host otherwise.
        """
        if packet.duplicate:
            # A fault-made duplicate copy carries no accounting weight;
            # the original packet owns the flow's conservation books.
            return
        src, dst = packet.flow_src, packet.flow_dst
        if dst in self._crashed or dst in self._declared:
            self.bytes_abandoned += packet.payload_bytes
            return
        if src in self._declared:
            # The source's un-injected remainder was already flushed at
            # its declaration; this straggler packet goes host-side too.
            self._host_send(src, dst, packet.payload_bytes)
            return
        key = (src, dst)
        self._injected[key] = self._injected.get(key, 0) - packet.payload_bytes
        if src not in self._crashed:
            per_dst = self._pending_resend.setdefault(src, {})
            per_dst[dst] = per_dst.get(dst, 0) + packet.payload_bytes
        # A crashed-but-undeclared source needs nothing here: lowering
        # its injected count grows the planned-minus-injected remainder
        # that its own declaration re-sends through the host.

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def notice_crash(self, gpu_id: int) -> None:
        """A GPU just crashed: freeze its heartbeat, schedule detection.

        The victim's last heartbeat is the last whole interval it
        completed before the crash; the declaration fires once the miss
        budget elapses past it (plus one broadcast propagation delay for
        the silence to become observable), which is exactly when a
        monitor polling :meth:`LinkStateBoard.last_heartbeat` would see
        the budget exceeded.
        """
        if gpu_id in self._crashed:
            return
        now = self.engine.now
        self._crashed[gpu_id] = now
        if self._first_crash_at is None:
            self._first_crash_at = now
        interval = self.config.heartbeat_interval
        last_beat = math.floor(now / interval) * interval
        self.board.record_heartbeat(gpu_id, last_beat)
        declare_at = (
            last_beat
            + self.config.miss_budget * interval
            + self.board.broadcast_latency
        )
        self.engine.schedule(max(0.0, declare_at - now), self._declare, gpu_id)
        node = self.nodes[gpu_id]
        self.bytes_discarded += node.crash()

    # ------------------------------------------------------------------
    # Declaration + resumption
    # ------------------------------------------------------------------

    def _declare(self, gpu_id: int) -> None:
        if gpu_id in self._declared:
            return
        now = self.engine.now
        self._declared[gpu_id] = now
        crash_at = self._crashed[gpu_id]
        # Survivor-only routing: the dead GPU may no longer source,
        # relay or terminate any route, and its buffer credits will
        # never free — fail them so blocked senders wake immediately.
        self.enumerator.fail_gpu(gpu_id)
        self.nodes[gpu_id].fail_buffers()
        self._expected_by_dst.pop(gpu_id, None)
        for peer_id in sorted(self.nodes):
            peer = self.nodes[peer_id]
            if peer.crashed:
                continue
            self.bytes_cancelled += peer.cancel_flows_to(gpu_id)
            peer.purge_dead_flows(self.is_dead)
        self._flush_resends()
        self._resend_dead_source_remainders(gpu_id)
        if self.observer is not None:
            self.observer.metrics.counter("recovery.crashes_detected").inc()
            # "faults" is FAULT_TRACK in repro.faults.injector (kept as a
            # literal to avoid a sim -> faults import).
            self.observer.add_span(
                f"detect gpu{gpu_id}",
                crash_at,
                now,
                track="faults",
                category="fault",
                gpu=gpu_id,
            )
            self.observer.instant(
                "gpu.declared_dead",
                now,
                track="faults",
                category="fault",
                gpu=gpu_id,
                detection_latency_seconds=now - crash_at,
                miss_budget=self.config.miss_budget,
                heartbeat_interval=self.config.heartbeat_interval,
            )
        if self.bridge is not None:
            reshuffle = self.bridge.on_gpu_dead(gpu_id, self.survivors())
            self._apply_reshuffle(gpu_id, reshuffle)

    def _flush_resends(self) -> None:
        """Re-inject orphaned bytes at their (live) source GPUs."""
        pending, self._pending_resend = self._pending_resend, {}
        for src in sorted(pending):
            flows = {
                dst: nbytes
                for dst, nbytes in sorted(pending[src].items())
                if dst not in self._declared and nbytes > 0
            }
            if not flows:
                continue
            if src in self._declared:
                for dst, nbytes in flows.items():
                    self._host_send(src, dst, nbytes)
                continue
            self.nodes[src].start_flows(flows)

    def _resend_dead_source_remainders(self, gpu_id: int) -> None:
        """Ship the dead GPU's un-injected outgoing bytes via the host.

        The data a crashed GPU never finished sending is re-read from
        the original relations in host memory (the join's input shards
        are host-resident), so it flows to each live destination through
        the host staging pipe rather than being lost.
        """
        for dst in self.survivors():
            if dst == gpu_id or dst in self._crashed:
                continue
            remainder = self._planned.get((gpu_id, dst), 0) - self._injected.get(
                (gpu_id, dst), 0
            )
            if remainder > 0:
                self._host_send(gpu_id, dst, remainder)

    def _apply_reshuffle(self, gpu_id: int, reshuffle) -> None:
        """Move the dead GPU's partitions to their new owners.

        Bytes covered by the dead GPU's last host checkpoint are
        *restored* straight from the host to the new owner; the rest is
        re-shuffled from the (host-resident) original relations — over
        the fabric when the source GPU is alive, through the host pipe
        otherwise.
        """
        budget = self.checkpointed_bytes(gpu_id)
        pending_start: dict[int, dict[int, int]] = {}
        for src in sorted(reshuffle.gpus):
            for dst, nbytes in sorted(reshuffle.outgoing(src).items()):
                if dst in self._declared:
                    continue
                nbytes = int(nbytes)
                take = min(budget, nbytes)
                budget -= take
                fabric = nbytes - take
                self.reshuffled_bytes += nbytes
                self._expected_by_dst[dst] = (
                    self._expected_by_dst.get(dst, 0) + nbytes
                )
                if take > 0:
                    self.checkpoint_restored_bytes += take
                    self._host_send(gpu_id, dst, take, restored=True)
                if fabric > 0:
                    if src in self._declared:
                        self._host_send(src, dst, fabric)
                    else:
                        self._planned[(src, dst)] = (
                            self._planned.get((src, dst), 0) + fabric
                        )
                        per_dst = pending_start.setdefault(src, {})
                        per_dst[dst] = per_dst.get(dst, 0) + fabric
        for src in sorted(pending_start):
            # A crashed-but-undeclared source's injector exits without
            # injecting; the bytes are covered at *its* declaration by
            # the planned-minus-injected remainder.
            self.nodes[src].start_flows(pending_start[src])

    def _host_send(
        self, src: int, dst: int, nbytes: int, *, restored: bool = False
    ) -> None:
        """Push ``nbytes`` from host memory to ``dst``, packetized."""
        if nbytes <= 0 or src == dst:
            return
        if not restored:
            self.host_resent_bytes += nbytes
        from repro.sim.gpusim import Packet  # local: avoid import cycle
        from repro.topology.routes import Route

        destination = self.nodes[dst]
        route = Route((src, dst))
        remaining = int(nbytes)
        while remaining > 0:
            payload = min(self.packet_size, remaining)
            remaining -= payload
            self._sequence += 1
            packet = Packet(
                flow_src=src,
                flow_dst=dst,
                payload_bytes=payload,
                header_bytes=self.header_bytes,
                route=route,
                sequence=self._sequence,
                created_at=self.engine.now,
            )
            if self.integrity is not None:
                self.integrity.stamp(packet)
            self.recovery.host_transfer(destination, packet)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def build_stats(self, elapsed: float) -> "RecoveryStats":
        from repro.sim.stats import RecoveryStats

        detection = {
            gpu_id: self._declared[gpu_id] - self._crashed[gpu_id]
            for gpu_id in sorted(self._declared)
        }
        start = self._first_crash_at if self._first_crash_at is not None else elapsed
        return RecoveryStats(
            crashed_gpus=tuple(sorted(self._crashed)),
            crashed_at=dict(sorted(self._crashed.items())),
            declared_at=dict(sorted(self._declared.items())),
            detection_latency=detection,
            reshuffled_bytes=self.reshuffled_bytes,
            host_resent_bytes=self.host_resent_bytes,
            checkpoint_restored_bytes=self.checkpoint_restored_bytes,
            bytes_discarded=self.bytes_discarded,
            bytes_cancelled=self.bytes_cancelled,
            bytes_abandoned=self.bytes_abandoned,
            recovery_elapsed=max(0.0, elapsed - start),
        )
