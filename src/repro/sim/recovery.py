"""Packet-loss recovery: bounded retry, re-route, host-staged fallback.

When faults are injected (:mod:`repro.faults`), packets can be lost —
a link goes down mid-transfer, or a receiver's routing-buffer credits
never free because the GPU behind them crashed.  The recovery layer
keeps the shuffle *live* under those conditions:

* a lost packet is retried after an exponential-backoff delay, bounded
  by :attr:`RetryPolicy.max_attempts`;
* each retry re-asks the :class:`~repro.routing.base.RoutingPolicy`
  for a route from the packet's *current* GPU, so ARM naturally routes
  around degraded or dead links;
* when no route exists at all (``UnroutableError``) or the retry
  budget is exhausted, the packet degrades gracefully to a
  *host-staged fallback*: the CPU relays it over PCIe at a recorded
  (much slower) rate instead of the join hanging or dropping data.

All recovery events are emitted as ``repro.obs`` instants and counters
so chaos runs can be audited in Chrome traces and ``repro analyze``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observer
    from repro.sim.engine import Engine
    from repro.sim.gpusim import GpuNode, Packet


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on the retry/backoff/fallback behaviour.

    The total extra delay a packet can accrue across its full retry
    budget is bounded by :meth:`total_delay_bound`, which tests assert
    stays finite and small relative to a shuffle.
    """

    #: Transmission attempts before falling back to host staging
    #: (the first attempt counts, so 4 = 1 try + 3 retries).
    max_attempts: int = 4
    #: Backoff before the first retry, seconds.
    base_delay: float = 100e-6
    #: Multiplier between consecutive retry delays.
    backoff: float = 2.0
    #: Cap on any single retry delay, seconds.
    max_delay: float = 5e-3
    #: How long a sender waits on routing-buffer credits before treating
    #: the receiver as unresponsive and re-routing (covers crashed GPUs
    #: whose buffers will never drain).
    acquire_timeout: float = 20e-3
    #: Host-staged fallback relay bandwidth (CPU copy through sysmem,
    #: pinned-buffer PCIe rate) and per-packet latency.
    host_bandwidth: float = 5e9
    host_latency: float = 50e-6

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1 (delays must not shrink)")

    def retry_delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return min(self.max_delay, self.base_delay * self.backoff**attempt)

    def total_delay_bound(self) -> float:
        """Upper bound on backoff delay summed over the retry budget."""
        return sum(self.retry_delay(i) for i in range(self.max_attempts - 1))


@dataclass
class RecoveryManager:
    """Shared recovery state and accounting for one shuffle run.

    The per-packet recovery logic lives in :class:`GpuNode` (it needs
    the node's queues and routing context); this object centralizes the
    policy knobs, the serialized host-fallback path and the counters
    that surface in :class:`~repro.sim.stats.ShuffleReport`.
    """

    engine: "Engine"
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    observer: "Observer | None" = None

    #: Recovery counters (copied onto the shuffle report).
    retries: int = 0
    reroutes: int = 0
    fallbacks: int = 0
    packets_recovered: int = 0

    #: The host relay is one staged pipe per destination GPU: fallback
    #: transfers to the same GPU serialize FIFO instead of completing
    #: in parallel at an unrealistic aggregate rate.
    _host_free_at: dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Event accounting
    # ------------------------------------------------------------------

    def record_retry(self, node: "GpuNode", packet: "Packet", *, reason: str,
                     rerouted: bool) -> None:
        self.retries += 1
        if rerouted:
            self.reroutes += 1
        if self.observer is not None:
            self.observer.metrics.counter("faults.retries").inc()
            if rerouted:
                self.observer.metrics.counter("faults.reroutes").inc()
            self.observer.instant(
                "packet.retry",
                self.engine.now,
                track=f"gpu{node.gpu_id}",
                category="fault",
                src=packet.flow_src,
                dst=packet.flow_dst,
                attempt=packet.attempts,
                reason=reason,
                route=str(packet.route),
                rerouted=rerouted,
            )

    def record_recovered(self, packet: "Packet") -> None:
        self.packets_recovered += 1
        if self.observer is not None:
            self.observer.metrics.counter("faults.packets_recovered").inc()

    # ------------------------------------------------------------------
    # Host-staged fallback (graceful degradation)
    # ------------------------------------------------------------------

    def fallback(self, node: "GpuNode", packet: "Packet", *, reason: str) -> None:
        """Relay ``packet`` to its destination through host memory.

        The transfer is charged ``host_latency + bytes/host_bandwidth``
        and serializes with other fallback traffic to the same
        destination; delivery then follows the normal path so byte
        accounting and correctness checks stay exact.
        """
        self.fallbacks += 1
        now = self.engine.now
        start = max(now, self._host_free_at.get(packet.flow_dst, 0.0))
        service = self.policy.host_latency + (
            packet.wire_bytes / self.policy.host_bandwidth
        )
        finish = start + service
        self._host_free_at[packet.flow_dst] = finish
        if self.observer is not None:
            self.observer.metrics.counter("faults.fallbacks").inc()
            self.observer.instant(
                "packet.fallback",
                now,
                track=f"gpu{node.gpu_id}",
                category="fault",
                src=packet.flow_src,
                dst=packet.flow_dst,
                attempts=packet.attempts,
                reason=reason,
                penalty_seconds=finish - now,
            )
        packet.fallback = True
        destination = node.peers[packet.flow_dst]
        self.engine.schedule(finish - now, destination.receive_fallback, packet)
