"""Execution tracing for shuffle simulations.

A :class:`Tracer` records per-link transfer intervals and per-GPU
delivery/forward events during a simulation, supporting the kind of
congestion forensics the paper does with the NVIDIA profiler: which
links were hot when, how a flow's packets spread over routes, where
backpressure stalled senders.

Since the observability layer landed, :class:`Tracer` is a thin
adapter over :class:`repro.obs.spans.SpanTracer`: every ``record``
becomes one simulated-clock span (``category="link"``, track = the
link/GPU label), so a shuffle trace can be merged into a full-pipeline
Chrome trace by handing the simulator an observer-backed tracer::

    observer = Observer()
    tracer = Tracer(spans=observer.spans)
    ShuffleSimulator(machine, tracer=tracer).run(flows, policy)
    write_chrome_trace(observer, "shuffle.json")

The legacy query/CSV/Gantt API is unchanged, and events past the
``max_events`` cap are no longer silently lost: they are counted in
:attr:`Tracer.dropped_events` and the first drop warns once.
"""

from __future__ import annotations

import io
import warnings
from dataclasses import dataclass

from repro.obs.spans import SpanTracer

#: Category tag marking spans owned by this adapter inside a shared
#: :class:`SpanTracer`.
LINK_CATEGORY = "link"


@dataclass(frozen=True)
class TraceEvent:
    """One traced interval or instant."""

    time: float
    duration: float
    kind: str  # "transfer" | "deliver" | "forward" | "stall"
    subject: str  # link or GPU label
    nbytes: int
    detail: str = ""

    @property
    def end(self) -> float:
        return self.time + self.duration


class Tracer:
    """Collects :class:`TraceEvent` records during a simulation.

    Args:
        spans: Span store to append to.  Pass an observer's tracer to
            merge link events into a full-pipeline trace; by default
            the tracer owns a private store.
        max_events: Hard cap on events *this tracer* records, so a
            runaway simulation cannot eat unbounded memory.  Dropped
            events are counted in :attr:`dropped_events`.
    """

    def __init__(
        self, spans: SpanTracer | None = None, max_events: int = 2_000_000
    ) -> None:
        self.spans = spans if spans is not None else SpanTracer(max_records=max_events)
        self.max_events = max_events
        #: Events refused because ``max_events`` (or the span store's
        #: own cap) was reached — check this before trusting a trace.
        self.dropped_events = 0
        self._recorded = 0
        self._warned_drop = False
        self._events_cache: tuple[int, list[TraceEvent]] | None = None

    def record(
        self,
        time: float,
        duration: float,
        kind: str,
        subject: str,
        nbytes: int,
        detail: str = "",
    ) -> None:
        if self._recorded >= self.max_events:
            self.dropped_events += 1
            if not self._warned_drop:
                self._warned_drop = True
                warnings.warn(
                    f"Tracer reached max_events={self.max_events}; further "
                    "events are dropped (see Tracer.dropped_events)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        span = self.spans.add_span(
            kind,
            time,
            time + duration,
            track=subject,
            category=LINK_CATEGORY,
            bytes=int(nbytes),
            detail=detail,
        )
        if span is None:
            # The shared span store hit its own cap (and warned); count
            # the loss here too so this tracer's CSV footer reports it.
            self.dropped_events += 1
            return
        self._recorded += 1

    @property
    def events(self) -> list[TraceEvent]:
        """The recorded events, as legacy :class:`TraceEvent` views."""
        cache = self._events_cache
        if cache is not None and cache[0] == self._recorded:
            return cache[1]
        events = [
            TraceEvent(
                time=span.start,
                duration=span.duration,
                kind=span.name,
                subject=span.track,
                nbytes=span.attrs.get("bytes", 0),
                detail=span.attrs.get("detail", ""),
            )
            for span in self.spans.spans
            if span.category == LINK_CATEGORY
        ]
        self._events_cache = (self._recorded, events)
        return events

    def __len__(self) -> int:
        return self._recorded

    # -- queries -----------------------------------------------------------

    def subjects(self) -> tuple[str, ...]:
        return tuple(sorted({event.subject for event in self.events}))

    def for_subject(self, subject: str) -> list[TraceEvent]:
        return [event for event in self.events if event.subject == subject]

    def busy_time(self, subject: str) -> float:
        return sum(event.duration for event in self.for_subject(subject))

    def bytes_moved(self, subject: str) -> int:
        return sum(event.nbytes for event in self.for_subject(subject))

    @property
    def horizon(self) -> float:
        events = self.events
        if not events:
            return 0.0
        return max(event.end for event in events)

    # -- export ------------------------------------------------------------

    def to_csv(self) -> str:
        """Render all events as CSV text (time-sorted)."""
        out = io.StringIO()
        out.write("time,duration,kind,subject,bytes,detail\n")
        for event in sorted(self.events, key=lambda e: (e.time, e.subject)):
            out.write(
                f"{event.time:.9f},{event.duration:.9f},{event.kind},"
                f"{event.subject},{event.nbytes},{event.detail}\n"
            )
        if self.dropped_events:
            out.write(f"# dropped_events,{self.dropped_events}\n")
        return out.getvalue()

    def ascii_gantt(self, width: int = 72, top: int = 12) -> str:
        """A terminal Gantt chart of the busiest subjects.

        Each row is one link/GPU; ``#`` marks time buckets where it was
        busy for more than half the bucket, ``-`` for any activity.
        """
        if not self.events:
            return "(no trace events)\n"
        horizon = self.horizon
        ranked = sorted(
            self.subjects(), key=lambda s: self.busy_time(s), reverse=True
        )[:top]
        label_width = max(len(s) for s in ranked)
        lines = []
        for subject in ranked:
            buckets = [0.0] * width
            for event in self.for_subject(subject):
                start = int(event.time / horizon * width)
                end = int(min(event.end, horizon) / horizon * width)
                for bucket in range(start, min(end + 1, width)):
                    buckets[bucket] += 1.0
            row = "".join(
                "#" if x > 0.5 else ("-" if x > 0 else " ")
                for x in (min(value, 1.0) for value in buckets)
            )
            utilization = self.busy_time(subject) / horizon * 100
            lines.append(
                f"{subject:>{label_width}} |{row}| {utilization:5.1f}%"
            )
        scale = f"{'':>{label_width}}  0{'':{width - 10}}{horizon * 1e3:.1f} ms"
        return "\n".join(lines + [scale]) + "\n"
