"""Execution tracing for shuffle simulations.

A :class:`Tracer` records per-link transfer intervals and per-GPU
delivery/forward events during a simulation, supporting the kind of
congestion forensics the paper does with the NVIDIA profiler: which
links were hot when, how a flow's packets spread over routes, where
backpressure stalled senders.

Enable it via ``ShuffleSimulator(..., tracer=Tracer())``; afterwards
the tracer offers CSV export and a terminal Gantt rendering.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One traced interval or instant."""

    time: float
    duration: float
    kind: str  # "transfer" | "deliver" | "forward" | "stall"
    subject: str  # link or GPU label
    nbytes: int
    detail: str = ""

    @property
    def end(self) -> float:
        return self.time + self.duration


@dataclass
class Tracer:
    """Collects :class:`TraceEvent` records during a simulation."""

    events: list[TraceEvent] = field(default_factory=list)
    #: Hard cap so a runaway simulation cannot eat unbounded memory.
    max_events: int = 2_000_000

    def record(
        self,
        time: float,
        duration: float,
        kind: str,
        subject: str,
        nbytes: int,
        detail: str = "",
    ) -> None:
        if len(self.events) >= self.max_events:
            return
        self.events.append(
            TraceEvent(
                time=time,
                duration=duration,
                kind=kind,
                subject=subject,
                nbytes=nbytes,
                detail=detail,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    # -- queries -----------------------------------------------------------

    def subjects(self) -> tuple[str, ...]:
        return tuple(sorted({event.subject for event in self.events}))

    def for_subject(self, subject: str) -> list[TraceEvent]:
        return [event for event in self.events if event.subject == subject]

    def busy_time(self, subject: str) -> float:
        return sum(event.duration for event in self.for_subject(subject))

    def bytes_moved(self, subject: str) -> int:
        return sum(event.nbytes for event in self.for_subject(subject))

    @property
    def horizon(self) -> float:
        if not self.events:
            return 0.0
        return max(event.end for event in self.events)

    # -- export ------------------------------------------------------------

    def to_csv(self) -> str:
        """Render all events as CSV text (time-sorted)."""
        out = io.StringIO()
        out.write("time,duration,kind,subject,bytes,detail\n")
        for event in sorted(self.events, key=lambda e: (e.time, e.subject)):
            out.write(
                f"{event.time:.9f},{event.duration:.9f},{event.kind},"
                f"{event.subject},{event.nbytes},{event.detail}\n"
            )
        return out.getvalue()

    def ascii_gantt(self, width: int = 72, top: int = 12) -> str:
        """A terminal Gantt chart of the busiest subjects.

        Each row is one link/GPU; ``#`` marks time buckets where it was
        busy for more than half the bucket, ``-`` for any activity.
        """
        if not self.events:
            return "(no trace events)\n"
        horizon = self.horizon
        ranked = sorted(
            self.subjects(), key=lambda s: self.busy_time(s), reverse=True
        )[:top]
        label_width = max(len(s) for s in ranked)
        lines = []
        for subject in ranked:
            buckets = [0.0] * width
            for event in self.for_subject(subject):
                start = int(event.time / horizon * width)
                end = int(min(event.end, horizon) / horizon * width)
                for bucket in range(start, min(end + 1, width)):
                    buckets[bucket] += 1.0
            row = "".join(
                "#" if x > 0.5 else ("-" if x > 0 else " ")
                for x in (min(value, 1.0) for value in buckets)
            )
            utilization = self.busy_time(subject) / horizon * 100
            lines.append(
                f"{subject:>{label_width}} |{row}| {utilization:5.1f}%"
            )
        scale = f"{'':>{label_width}}  0{'':{width - 10}}{horizon * 1e3:.1f} ms"
        return "\n".join(lines + [scale]) + "\n"
