"""Simulation resources: FIFO stores and credit-managed routing buffers.

The :class:`RoutingBuffer` implements the paper's §4.1 buffer design:
each GPU keeps one circular packet buffer *per neighbouring GPU*, shared
by all data flows arriving from that neighbour.  To keep cross-GPU
synchronization off the critical path, the sending GPU works from a
*stale* credit count and only synchronizes with the receiver (paying a
round-trip latency) when its local view reaches zero slots.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.sim.engine import Engine, SimEvent, SimulationError


class Store:
    """An unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` returns an event that triggers when an
    item is available (immediately if the store is non-empty).
    """

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._items: deque[Any] = deque()
        self._getters: deque[SimEvent] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> SimEvent:
        event = self._engine.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class RoutingBuffer:
    """A receiver-side circular packet buffer with lazy credit sync.

    The receiver owns ``slots`` packet slots.  The sender tracks a local
    credit count, decremented per push.  When credits run out, the
    sender *synchronizes*: it pays ``sync_latency`` and refreshes its
    credits from the receiver's true free-slot count (paper §4.1).  If
    the buffer is genuinely full, the sender blocks until the receiver
    releases a slot.

    Use from a sender process as ``yield from buffer.acquire()``; the
    receiver calls :meth:`release` as packets are consumed or forwarded.
    """

    def __init__(self, engine: Engine, slots: int, sync_latency: float) -> None:
        if slots < 1:
            raise ValueError(f"a routing buffer needs >= 1 slot, got {slots}")
        if sync_latency < 0:
            raise ValueError("sync_latency must be non-negative")
        self._engine = engine
        self._slots = slots
        self._sync_latency = sync_latency
        self._occupied = 0
        self._credits = slots
        self._waiters: deque[SimEvent] = deque()
        #: Number of sender/receiver credit synchronizations performed.
        self.sync_count = 0
        #: Set when the owning GPU is declared dead: acquisition fails
        #: immediately and every blocked sender is woken so it can
        #: re-route instead of waiting out the full acquire timeout.
        self.dead = False

    @property
    def slots(self) -> int:
        return self._slots

    @property
    def occupied(self) -> int:
        return self._occupied

    @property
    def free(self) -> int:
        return self._slots - self._occupied

    def mark_dead(self) -> None:
        """Declare the owning GPU dead; fail waiters and future acquires."""
        self.dead = True
        while self._waiters:
            self._waiters.popleft().succeed()

    def try_acquire(self) -> bool:
        """Claim one slot if local credits allow it, without blocking.

        This is the sender's fast path: while its (possibly stale)
        credit view is positive, :meth:`acquire` would yield nothing
        anyway, so the whole generator round-trip can be skipped.  The
        credit/occupancy bookkeeping is identical to :meth:`acquire`.
        """
        if self.dead or self._credits <= 0:
            return False
        self._credits -= 1
        self._occupied += 1
        return True

    def acquire(self, timeout: float | None = None) -> Generator[SimEvent, Any, bool]:
        """Claim one slot, synchronizing / blocking as needed.

        Returns ``True`` once a slot is claimed.  With a ``timeout``
        (seconds), gives up after waiting that long for a free slot and
        returns ``False`` instead — letting a sender re-route around a
        receiver that will never drain (e.g. a crashed GPU) rather than
        deadlocking on its credits.
        """
        if self.dead:
            return False
        deadline = None if timeout is None else self._engine.now + timeout
        while self._credits <= 0:
            yield self._engine.sleep(self._sync_latency)
            self.sync_count += 1
            if self.dead:
                return False
            self._credits = self.free
            if self._credits <= 0:
                waiter = self._engine.event()
                self._waiters.append(waiter)
                if deadline is None:
                    yield waiter
                else:
                    remaining = deadline - self._engine.now
                    if remaining <= 0:
                        self._waiters.remove(waiter)
                        return False
                    yield self._engine.any_of(
                        [waiter, self._engine.timeout(remaining)]
                    )
                    if not waiter.triggered:
                        # Timed out before any release reached us.
                        self._waiters.remove(waiter)
                        return False
                if self.dead:
                    # Woken by mark_dead(), not a real slot release.
                    return False
                # A release happened; refresh the credit view and retry
                # (another DMA engine may have raced us to the slot).
                self._credits = self.free
        self._credits -= 1
        self._occupied += 1
        return True

    def release(self) -> None:
        """Free one slot (packet consumed or forwarded onward)."""
        if self._occupied <= 0:
            raise SimulationError("released a slot that was never acquired")
        self._occupied -= 1
        if self._waiters:
            self._waiters.popleft().succeed()
