"""MG-Join's adaptive routing metric and policy (paper §4.2.2).

For every candidate route ``R`` and packet ``P`` the policy evaluates

    ARM(R, P) = T_R + D_R                                   (Eq. 2)
    T_R       = ||P|| / B_E(||P||)   over the bottleneck link (Eq. 3)
    D_R       = Σ_i (Q_i + L_i)      over the route's links   (Eq. 4)

and picks the route with the smallest ARM.  ``Q_i`` is the *perceived*
queueing delay: exact for the deciding GPU's own links, last-broadcast
for everybody else's — the policy never synchronizes on the decision
path.  Decisions are per batch (up to 8 packets sharing a route), and a
packet's route is fixed at the source, so no in-flight re-ordering or
circular routes can occur.
"""

from __future__ import annotations

from repro.routing.base import RoutingContext, RoutingPolicy
from repro.topology.routes import Route


def arm_value(
    context: RoutingContext,
    route: Route,
    packet_bytes: int,
    viewer_gpu: int | None = None,
    exact: bool = False,
) -> float:
    """Compute ARM(R, P) for one route as seen by ``viewer_gpu``.

    With ``exact=True`` the ground-truth queue delays are used instead
    of the broadcast view (the centralized baseline's privilege).

    The static parts — the link list and ``T_R`` — come from the
    machine's :class:`repro.topology.routes.RouteCache`; only the
    dynamic queue terms are walked per decision.  The accumulation
    order over links is unchanged, so values stay bit-identical to the
    uncached evaluation.
    """
    cache = context.enumerator.cache
    links = cache.links(route)
    transmission = cache.transmission_time(route, packet_bytes)
    dynamic_delay = 0.0
    for spec in links:
        if exact:
            queue = context.exact_queue_delay(spec)
        else:
            queue = context.queue_delay_seen_by(
                viewer_gpu if viewer_gpu is not None else route.src, spec
            )
        dynamic_delay += queue + spec.latency
    return transmission + dynamic_delay


class AdaptiveArmPolicy(RoutingPolicy):
    """Per-batch, source-decided, congestion-aware route selection.

    Routes whose ARM is within ``spread_tolerance`` of the minimum are
    considered equivalent and used in rotation, so consecutive batches
    of one flow spread over equally good routes instead of herding onto
    a single one until its queue-delay broadcast catches up.
    """

    name = "mg-join"

    def __init__(
        self, exact_state: bool = False, spread_tolerance: float = 0.0
    ) -> None:
        #: When True the policy reads ground-truth link state (used by
        #: the centralized baseline and by what-if analyses).
        self.exact_state = exact_state
        if spread_tolerance < 0:
            raise ValueError("spread_tolerance must be non-negative")
        self.spread_tolerance = spread_tolerance
        self._rotation: dict[tuple[int, int], int] = {}

    def choose_route(
        self,
        context: RoutingContext,
        src: int,
        dst: int,
        batch_bytes: int,
        packet_bytes: int,
    ) -> Route:
        scored = [
            (
                arm_value(
                    context,
                    route,
                    packet_bytes,
                    viewer_gpu=src,
                    exact=self.exact_state,
                ),
                route,
            )
            for route in context.enumerator.routes(src, dst)
        ]
        best_arm = min(score for score, _ in scored)
        cutoff = best_arm * (1.0 + self.spread_tolerance) + 1e-15
        near_best = [route for score, route in scored if score <= cutoff]
        turn = self._rotation.get((src, dst), 0)
        self._rotation[(src, dst)] = turn + 1
        chosen = near_best[turn % len(near_best)]
        observer = context.observer
        if observer is not None:
            self._record_decision(
                context, observer, src, dst, chosen, scored, packet_bytes, batch_bytes
            )
        return chosen

    def _record_decision(
        self,
        context: RoutingContext,
        observer,
        src: int,
        dst: int,
        chosen: Route,
        scored: list[tuple[float, Route]],
        packet_bytes: int,
        batch_bytes: int,
    ) -> None:
        """Emit one ARM decision: the generic auditable instant (all
        candidate routes + estimates) plus the Eq. 2 terms of the
        chosen route."""
        transmission = context.enumerator.cache.transmission_time(
            chosen, packet_bytes
        )
        arm = next(score for score, route in scored if route is chosen)
        self.emit_decision(
            context,
            src,
            dst,
            chosen,
            batch_bytes=batch_bytes,
            packet_bytes=packet_bytes,
            scored=scored,
            T_R=transmission,
            D_R=arm - transmission,
            arm=arm,
        )
