"""Routing policies for cross-GPU data flows.

The paper's central contribution is the *adaptive multi-hop* policy
(:class:`AdaptiveArmPolicy`, §4.2.2).  The static single-metric policies
it is compared against in Figures 5/7/9 live in
:mod:`repro.routing.static`, and the centralized synchronous variant of
Figure 10 (MGJ-Baseline) in :mod:`repro.routing.centralized`.
"""

from repro.routing.base import RoutingContext, RoutingPolicy
from repro.routing.static import (
    BandwidthPolicy,
    DirectPolicy,
    HopCountPolicy,
    LatencyPolicy,
)
from repro.routing.adaptive import AdaptiveArmPolicy, arm_value
from repro.routing.centralized import CentralizedPolicy

__all__ = [
    "AdaptiveArmPolicy",
    "BandwidthPolicy",
    "CentralizedPolicy",
    "DirectPolicy",
    "HopCountPolicy",
    "LatencyPolicy",
    "RoutingContext",
    "RoutingPolicy",
    "arm_value",
]
