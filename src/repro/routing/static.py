"""Static single-metric routing policies (paper §4.2.1).

These are the lightweight heuristics the networking community uses when
the multi-commodity-flow optimum is out of reach:

* **bandwidth** — the route whose bottleneck link has the highest peak
  bandwidth (the "shortest widest path"),
* **hop count** — the route crossing the fewest physical links,
* **latency** — the route with the lowest total static latency.

All three are *static*: they never look at current congestion, which is
exactly the weakness Figures 5, 7 and 9 expose.  ``DirectPolicy`` is the
degenerate single-hop policy used by existing systems (DPRJ, NCCL).
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from repro.routing.base import RoutingContext, RoutingPolicy
from repro.topology.routes import (
    Route,
    route_link_count,
    route_min_bandwidth,
    route_static_latency,
)


class _StaticPolicy(RoutingPolicy):
    """Common machinery: rank candidate routes by a static key.

    Static rankings never change during a run, so the winning route per
    (src, dst) pair is computed once and cached.
    """

    def choose_route(
        self,
        context: RoutingContext,
        src: int,
        dst: int,
        batch_bytes: int,
        packet_bytes: int,
    ) -> Route:
        # The enumerator version keys the cache so a link failure (which
        # changes the candidate set) invalidates previously cached picks.
        chosen = self._best_route(
            context.enumerator,
            context.machine,
            src,
            dst,
            context.enumerator.version,
        )
        if context.observer is not None:
            self.emit_decision(
                context,
                src,
                dst,
                chosen,
                batch_bytes=batch_bytes,
                packet_bytes=packet_bytes,
            )
        return chosen

    def _best_route(
        self, enumerator, machine, src: int, dst: int, version: int
    ) -> Route:
        # Memoized per enumerator via a weak key: a sweep that builds a
        # machine (and enumerator) per configuration must not have its
        # dead topologies pinned by a long-lived policy object — the
        # trap a module-level ``lru_cache`` on this method used to be.
        memo: WeakKeyDictionary | None = self.__dict__.get("_route_picks")
        if memo is None:
            memo = self.__dict__["_route_picks"] = WeakKeyDictionary()
        picks = memo.get(enumerator)
        if picks is None:
            picks = memo[enumerator] = {}
        key = (src, dst, version)
        chosen = picks.get(key)
        if chosen is None:
            candidates = enumerator.routes(src, dst)
            chosen = picks[key] = min(
                candidates, key=lambda route: self._rank(machine, route)
            )
        return chosen

    def _rank(self, machine, route: Route):
        raise NotImplementedError


class DirectPolicy(_StaticPolicy):
    """Always take the direct (single-hop) route — what DPRJ does."""

    name = "direct"

    def choose_route(self, context, src, dst, batch_bytes, packet_bytes) -> Route:
        chosen = context.enumerator.direct_route(src, dst)
        if context.observer is not None:
            self.emit_decision(
                context,
                src,
                dst,
                chosen,
                batch_bytes=batch_bytes,
                packet_bytes=packet_bytes,
            )
        return chosen

    def _rank(self, machine, route):  # pragma: no cover - not used
        return route.num_hops


class BandwidthPolicy(_StaticPolicy):
    """Maximize bottleneck bandwidth; break ties with fewer links."""

    name = "bandwidth"

    def _rank(self, machine, route):
        return (
            -route_min_bandwidth(machine, route),
            route_link_count(machine, route),
            route.gpus,
        )


class HopCountPolicy(_StaticPolicy):
    """Minimize physical links crossed; ignore their speed entirely."""

    name = "hop-count"

    def _rank(self, machine, route):
        return (route_link_count(machine, route), route.gpus)


class LatencyPolicy(_StaticPolicy):
    """Minimize total static link latency."""

    name = "latency"

    def _rank(self, machine, route):
        return (route_static_latency(machine, route), route.gpus)
