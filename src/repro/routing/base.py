"""Routing policy interface and shared context.

A policy sees a :class:`RoutingContext` — the machine, the candidate
route enumerator, live link channels and the (delayed) link-state board
— and must pick a route for each batch of packets.  Policies are
deliberately *per-source* decision makers: the paper fixes each packet's
route at the source GPU to avoid cross-GPU synchronization (§4.2.2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.engine import Engine
from repro.sim.linksim import LinkChannel, LinkStateBoard
from repro.topology.links import LinkSpec
from repro.topology.machine import MachineTopology
from repro.topology.routes import Route, RouteEnumerator, UnroutableError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observer
    from repro.obs.analyze.timeline import LinkTimelineSampler


@dataclass
class RoutingContext:
    """Everything a routing policy may consult when choosing a route."""

    engine: Engine
    machine: MachineTopology
    enumerator: RouteEnumerator
    links: dict[int, LinkChannel]
    board: LinkStateBoard
    num_gpus: int
    #: Observability sink for route decisions and state staleness;
    #: ``None`` = off (policies must guard on it).
    observer: "Observer | None" = None
    #: Time-resolved link/flow sampler; ``None`` = off.
    sampler: "LinkTimelineSampler | None" = None
    #: Cost-model conformance probe (predicted T_R/D_R vs actuals);
    #: ``None`` = off.  See :mod:`repro.obs.conformance`.
    conformance: "object | None" = None

    def queue_delay_seen_by(self, viewer_gpu: int, spec: LinkSpec) -> float:
        """Queue delay of ``spec`` as GPU ``viewer_gpu`` perceives it.

        A GPU knows its own outgoing links exactly; every other link is
        known only through the last broadcast (§4.2.2).
        """
        if spec.src.is_gpu and spec.src.index == viewer_gpu:
            return self.links[spec.link_id].queue_delay()
        published = self.board.published_queue_delay(spec.link_id)
        if self.observer is not None:
            # How stale is the broadcast view this decision just used?
            actual = self.links[spec.link_id].queue_delay()
            self.observer.metrics.histogram("board.staleness_seconds").observe(
                abs(actual - published)
            )
        return published

    def exact_queue_delay(self, spec: LinkSpec) -> float:
        """Ground-truth queue delay (used by the centralized baseline)."""
        return self.links[spec.link_id].queue_delay()


class RoutingPolicy(abc.ABC):
    """Chooses a route per batch; optionally charges per-batch overhead."""

    #: Human-readable policy name, used in reports and figures.
    name: str = "abstract"

    @abc.abstractmethod
    def choose_route(
        self,
        context: RoutingContext,
        src: int,
        dst: int,
        batch_bytes: int,
        packet_bytes: int,
    ) -> Route:
        """Pick the route for one batch of packets from ``src`` to ``dst``."""

    def batch_overhead(self, context: RoutingContext) -> float:
        """Extra seconds charged before each batch (e.g. global sync)."""
        return 0.0

    def emit_decision(
        self,
        context: RoutingContext,
        src: int,
        dst: int,
        chosen: Route,
        *,
        batch_bytes: int,
        packet_bytes: int,
        scored: "list[tuple[float, Route]] | None" = None,
        **extra,
    ) -> None:
        """Record one auditable ``arm.decision`` instant.

        Every policy calls this (not just the adaptive one), so the
        decision audit can compare policies on equal footing.  The
        instant carries the *candidate route set* the policy could have
        picked — with the policy's own cost estimates when it scored
        them — plus the broadcast-board staleness over the chosen
        route's remote links, enabling counterfactual replay against
        the realized link timelines (``repro.obs.analyze.regret``).
        """
        observer = context.observer
        if observer is None:
            return
        if scored is not None:
            routes = [str(route) for _, route in scored]
            estimates = [score for score, _ in scored]
        else:
            try:
                candidates = context.enumerator.routes(src, dst)
            except UnroutableError:
                # DirectPolicy can still emit its (doomed) direct pick
                # while the pair has no surviving enumerable route.
                candidates = [chosen]
            routes = [str(route) for route in candidates]
            estimates = None
        attrs = dict(
            src=src,
            dst=dst,
            policy=self.name,
            route=str(chosen),
            routes=routes,
            candidates=len(routes),
            batch_bytes=batch_bytes,
            packet_bytes=packet_bytes,
            direct=chosen.is_direct,
            staleness=self._board_staleness(context, src, chosen),
            **extra,
        )
        if estimates is not None:
            attrs["est"] = estimates
        observer.instant(
            "arm.decision",
            context.engine.now,
            track=f"gpu{src}",
            category="route",
            **attrs,
        )
        observer.metrics.counter("route.decisions", src=src, dst=dst).inc()
        if not chosen.is_direct:
            observer.metrics.counter("route.multi_hop_decisions").inc()

    @staticmethod
    def _board_staleness(
        context: RoutingContext, viewer_gpu: int, route: Route
    ) -> float:
        """Mean |actual - published| queue delay over the route's
        remote links — how wrong the decider's view was, in seconds."""
        from repro.topology.routes import physical_links

        error = 0.0
        remote = 0
        for spec in physical_links(context.machine, route):
            if spec.src.is_gpu and spec.src.index == viewer_gpu:
                continue
            remote += 1
            actual = context.links[spec.link_id].queue_delay()
            published = context.board.published_queue_delay(spec.link_id)
            error += abs(actual - published)
        return error / remote if remote else 0.0
