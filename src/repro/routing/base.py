"""Routing policy interface and shared context.

A policy sees a :class:`RoutingContext` — the machine, the candidate
route enumerator, live link channels and the (delayed) link-state board
— and must pick a route for each batch of packets.  Policies are
deliberately *per-source* decision makers: the paper fixes each packet's
route at the source GPU to avoid cross-GPU synchronization (§4.2.2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.engine import Engine
from repro.sim.linksim import LinkChannel, LinkStateBoard
from repro.topology.links import LinkSpec
from repro.topology.machine import MachineTopology
from repro.topology.routes import Route, RouteEnumerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observer


@dataclass
class RoutingContext:
    """Everything a routing policy may consult when choosing a route."""

    engine: Engine
    machine: MachineTopology
    enumerator: RouteEnumerator
    links: dict[int, LinkChannel]
    board: LinkStateBoard
    num_gpus: int
    #: Observability sink for route decisions and state staleness;
    #: ``None`` = off (policies must guard on it).
    observer: "Observer | None" = None

    def queue_delay_seen_by(self, viewer_gpu: int, spec: LinkSpec) -> float:
        """Queue delay of ``spec`` as GPU ``viewer_gpu`` perceives it.

        A GPU knows its own outgoing links exactly; every other link is
        known only through the last broadcast (§4.2.2).
        """
        if spec.src.is_gpu and spec.src.index == viewer_gpu:
            return self.links[spec.link_id].queue_delay()
        published = self.board.published_queue_delay(spec.link_id)
        if self.observer is not None:
            # How stale is the broadcast view this decision just used?
            actual = self.links[spec.link_id].queue_delay()
            self.observer.metrics.histogram("board.staleness_seconds").observe(
                abs(actual - published)
            )
        return published

    def exact_queue_delay(self, spec: LinkSpec) -> float:
        """Ground-truth queue delay (used by the centralized baseline)."""
        return self.links[spec.link_id].queue_delay()


class RoutingPolicy(abc.ABC):
    """Chooses a route per batch; optionally charges per-batch overhead."""

    #: Human-readable policy name, used in reports and figures.
    name: str = "abstract"

    @abc.abstractmethod
    def choose_route(
        self,
        context: RoutingContext,
        src: int,
        dst: int,
        batch_bytes: int,
        packet_bytes: int,
    ) -> Route:
        """Pick the route for one batch of packets from ``src`` to ``dst``."""

    def batch_overhead(self, context: RoutingContext) -> float:
        """Extra seconds charged before each batch (e.g. global sync)."""
        return 0.0
