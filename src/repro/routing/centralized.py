"""The centralized routing baseline of Figure 10 (MGJ-Baseline).

MGJ-Baseline makes every routing decision in a central process with a
perfectly fresh, global view of all link queues — but obtaining that
view requires all GPUs to synchronize before *every batch* of packets.
The result the paper reports: the privileged view buys up to ~3% better
raw transfer time, while the synchronization cost makes the overall
data-distribution step up to 1.5x slower than MG-Join's decentralized
adaptive routing.
"""

from __future__ import annotations

from repro.routing.adaptive import AdaptiveArmPolicy, arm_value
from repro.routing.base import RoutingContext
from repro.topology.routes import Route


class CentralizedPolicy(AdaptiveArmPolicy):
    """Globally synchronized ARM routing with exact link state."""

    name = "mgj-baseline"

    def __init__(self, per_gpu_sync_latency: float = 20e-6) -> None:
        super().__init__(exact_state=True)
        if per_gpu_sync_latency < 0:
            raise ValueError("per_gpu_sync_latency must be non-negative")
        self.per_gpu_sync_latency = per_gpu_sync_latency

    def batch_overhead(self, context: RoutingContext) -> float:
        """A barrier across all participating GPUs, paid per batch.

        Each of the other GPUs must be contacted and answer before the
        central decision is distributed (one round trip per peer, as the
        GPUs lack dedicated routing hardware, §4.2.2).
        """
        return 2.0 * self.per_gpu_sync_latency * max(0, context.num_gpus - 1)

    def choose_route(
        self,
        context: RoutingContext,
        src: int,
        dst: int,
        batch_bytes: int,
        packet_bytes: int,
    ) -> Route:
        best_route: Route | None = None
        best_arm = float("inf")
        scored: list[tuple[float, Route]] = []
        for route in context.enumerator.routes(src, dst):
            arm = arm_value(context, route, packet_bytes, exact=True)
            scored.append((arm, route))
            if arm < best_arm - 1e-15:
                best_arm = arm
                best_route = route
        assert best_route is not None
        if context.observer is not None:
            self._record_decision(
                context,
                context.observer,
                src,
                dst,
                best_route,
                scored,
                packet_bytes,
                batch_bytes,
            )
        return best_route
