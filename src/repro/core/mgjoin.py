"""The MG-Join orchestrator (paper §3.2).

Runs the four phases — histogram, global partitioning (assignment +
data distribution), local partitioning, probe — functionally on the
workload's numpy shards while accounting costs at the workload's
logical scale:

* kernel times come from :class:`repro.sim.compute.GpuComputeModel`,
* the data-distribution step is simulated packet-by-packet by
  :class:`repro.sim.shuffle.ShuffleSimulator` under the configured
  routing policy (adaptive multi-hop by default).

Overlap model: the global-partitioning kernel *produces* packets (it
paces injection), the local-partitioning kernel *consumes* them as they
arrive (Rationale 2), so the middle of the join costs
``max(partition pass, distribution, first local pass)`` plus any local
passes beyond the first.  The part of the distribution time not hidden
under compute is reported as the exposed "Data Distribution" of
Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.assignment import PartitionAssignment, assign_partitions
from repro.core.compression import CompressionModel, build_compression_model
from repro.core.config import MGJoinConfig
from repro.core.global_partition import (
    DistributedData,
    execute_distribution,
    plan_flows,
)
from repro.core.histogram import (
    HistogramSet,
    build_histograms,
    max_partitions,
    partition_of,
)
from repro.core.local_partition import plan_local_passes, refine
from repro.core.probe import probe_partitions
from repro.core.recovery import (
    JoinRecoveryCoordinator,
    RecoveryReport,
    canonical_match_digest,
    ensure_recoverable,
)
from repro.core.relation import GpuShard, JoinWorkload
from repro.obs import NULL_OBSERVER, Observer
from repro.routing.adaptive import AdaptiveArmPolicy
from repro.routing.base import RoutingPolicy
from repro.sim.recovery import RecoveryConfig, RetryPolicy
from repro.sim.shuffle import FlowMatrix, ShuffleSimulator
from repro.sim.stats import ShuffleReport
from repro.topology.machine import MachineTopology

#: Which wall-clock span names feed each :meth:`PhaseBreakdown.as_dict`
#: key.  ``MGJoin.run`` opens exactly these spans; the regression test
#: in ``tests/obs`` asserts the two stay in sync, so a new phase cannot
#: be timed without also appearing in the reported breakdown.
PHASE_SPANS: dict[str, tuple[str, ...]] = {
    "histogram": ("histogram",),
    "partition_compute": ("global_partition", "local_partition"),
    "distribution_exposed": ("shuffle",),
    "probe": ("probe",),
}


@dataclass(frozen=True)
class PhaseBreakdown:
    """Seconds spent per pipeline stage (logical scale).

    ``partition_compute`` is the overlapped partitioning work (global
    pass + all local passes); ``distribution_exposed`` is the slice of
    the data-distribution step that could not hide under compute — the
    "Data Distribution" bar of Figure 12.
    """

    histogram: float
    partition_compute: float
    distribution_exposed: float
    probe: float

    @property
    def total(self) -> float:
        return (
            self.histogram
            + self.partition_compute
            + self.distribution_exposed
            + self.probe
        )

    @property
    def distribution_share(self) -> float:
        if self.total <= 0:
            return 0.0
        return self.distribution_exposed / self.total

    def as_dict(self) -> dict[str, float]:
        return {
            "histogram": self.histogram,
            "partition_compute": self.partition_compute,
            "distribution_exposed": self.distribution_exposed,
            "probe": self.probe,
        }


@dataclass
class JoinResult:
    """Everything one join run produced and measured."""

    algorithm: str
    num_gpus: int
    logical_tuples: int
    real_tuples: int
    breakdown: PhaseBreakdown
    matches_real: int
    logical_scale: int
    shuffle_report: ShuffleReport | None = None
    compression_ratio: float = 1.0
    assignment_broadcasts: int = 0
    local_passes: int = 0
    gpu_clock_hz: float = 1.53e9
    gpu_sms: int = 80
    per_gpu_matches: dict[int, int] = field(default_factory=dict)
    #: Order-independent sha256 of the materialized (r_id, s_id) match
    #: set; ``None`` unless ``config.materialize`` is on.  Healthy and
    #: crash-recovered runs of the same workload produce the same digest.
    match_digest: str | None = None
    #: Join-level crash-recovery summary; ``None`` on healthy runs.
    recovery: RecoveryReport | None = None

    @property
    def total_time(self) -> float:
        return self.breakdown.total

    @property
    def matches_logical(self) -> int:
        return self.matches_real * self.logical_scale

    @property
    def throughput(self) -> float:
        """Input tuples joined per second (Figure 11/13 metric)."""
        if self.total_time <= 0:
            return 0.0
        return self.logical_tuples / self.total_time

    @property
    def cycles_per_tuple(self) -> float:
        """Aggregate SM cycles per input tuple (Figure 1 metric).

        Counts clock cycles elapsing on every SM of every participating
        GPU over the join's runtime, divided by logical input tuples.
        """
        if self.logical_tuples == 0:
            return 0.0
        cycles = self.total_time * self.gpu_clock_hz * self.gpu_sms * self.num_gpus
        return cycles / self.logical_tuples


class MGJoin:
    """Public entry point: MG-Join on one machine.

    Example::

        machine = dgx1_topology()
        workload = generate_workload(WorkloadSpec(gpu_ids=(0, 1, 2, 3)))
        result = MGJoin(machine).run(workload)
        print(result.throughput, result.matches_logical)
    """

    algorithm = "mg-join"
    #: Whether the data-distribution step overlaps the compute chain
    #: (MG-Join's packetized design does; DPRJ's transfer-then-compute
    #: does not).
    overlap_distribution = True

    def __init__(
        self,
        machine: MachineTopology,
        config: MGJoinConfig | None = None,
        policy: RoutingPolicy | None = None,
        observer: Observer | None = None,
        sampler=None,
        faults=None,
        retry: RetryPolicy | None = None,
        recovery: RecoveryConfig | None = None,
    ) -> None:
        self.machine = machine
        self.config = config or MGJoinConfig()
        self.policy = policy or AdaptiveArmPolicy()
        #: Observability sink (spans + metrics); ``None`` = off.
        self.observer = observer
        #: Link-timeline sampler for the distribution step
        #: (:class:`repro.obs.analyze.LinkTimelineSampler`); ``None`` = off.
        self.sampler = sampler
        #: Fault plan (:class:`repro.faults.FaultPlan`) injected into the
        #: data-distribution step; ``None`` = healthy fabric.
        self.faults = faults
        #: Retry/backoff/host-fallback knobs for faulted shuffles;
        #: ``None`` = :class:`~repro.sim.recovery.RetryPolicy` defaults.
        self.retry = retry
        #: Heartbeat/checkpoint knobs for join-level crash recovery;
        #: ``None`` = :class:`~repro.sim.recovery.RecoveryConfig` defaults.
        self.recovery = recovery
        #: The per-run join recovery coordinator (set by :meth:`run`
        #: when the fault plan contains a GPU crash).
        self._recovery_bridge: JoinRecoveryCoordinator | None = None

    # ------------------------------------------------------------------

    def run(self, workload: JoinWorkload) -> JoinResult:
        """Execute the join and return results plus cost accounting."""
        config = self.config
        gpu_ids = workload.gpu_ids
        unknown = set(gpu_ids) - set(self.machine.gpu_ids)
        if unknown:
            raise ValueError(f"workload references unknown GPUs: {sorted(unknown)}")
        obs = self.observer if self.observer is not None else NULL_OBSERVER
        compute = config.compute
        scale = workload.logical_scale
        num_partitions = config.num_partitions or max_partitions(
            compute.spec, config.histogram_entry_bytes, config.thread_blocks_per_sm
        )

        with obs.span(
            "join",
            algorithm=self.algorithm,
            gpus=len(gpu_ids),
            logical_tuples=workload.logical_tuples,
            partitions=num_partitions,
        ):
            # Phase 1: histograms (real counts; times at logical scale).
            with obs.span("histogram"):
                histograms = build_histograms(workload.r, workload.s, num_partitions)
                histogram_time = max(
                    compute.histogram_time(
                        workload.logical_tuples_on(g), key_bytes=config.key_bytes
                    )
                    for g in gpu_ids
                )

            # Phase 2a: partition assignment (overlapped with the
            # partition kernel per the paper, so it adds no
            # critical-path time).
            with obs.span("assignment"):
                if len(gpu_ids) > 1:
                    assignment = self._make_assignment(histograms)
                else:
                    assignment = _single_gpu_assignment(histograms)
                compression = self._compression_model(workload, num_partitions)
            # Selective broadcast is the skew handler: count activations.
            obs.counter("assign.broadcast_partitions").inc(assignment.num_broadcast)

            # Join-level crash recovery: armed only when the fault plan
            # can kill a GPU.  The replicated histograms let the bridge
            # recompute survivor-only ownership mid-shuffle.
            self._recovery_bridge = self._make_recovery_bridge(
                histograms, assignment, compression, gpu_ids, scale
            )

            # Phase 2b: global partitioning pass + simulated distribution.
            with obs.span("global_partition"):
                global_pass_time = max(
                    compute.partition_time(
                        workload.logical_tuples_on(g), config.tuple_bytes, passes=1
                    )
                    for g in gpu_ids
                )
                flows = plan_flows(histograms, assignment, compression, scale)
                with obs.span(
                    "shuffle", flows=len(flows.flows), payload_bytes=flows.total_bytes
                ):
                    shuffle_report = self._simulate_distribution(
                        flows, gpu_ids, global_pass_time, compression
                    )
                distribution_time = shuffle_report.elapsed if shuffle_report else 0.0
                bridge = self._recovery_bridge
                dead = set(bridge.dead_gpus) if bridge is not None else set()
                if dead:
                    # GPUs died during the shuffle: the functional pass
                    # re-reads the original (host-resident) relations
                    # against the survivor-only assignment, so the
                    # result stays exact without a full restart.
                    assignment = bridge.final_assignment
                data = execute_distribution(
                    workload.r, workload.s, histograms, assignment
                )

            # Crashed GPUs contribute zero compute after their crash:
            # the local partition and probe phases run on survivors only.
            live_ids = tuple(g for g in gpu_ids if g not in dead)

            # Phase 3: local partitioning (overlapped with arrival).
            with obs.span("local_partition"):
                local_passes, local_pass_time, local_total_time = self._plan_local(
                    data, live_ids, num_partitions, scale
                )
            if local_passes > 1:
                obs.counter("local.extra_passes").inc(local_passes - 1)

            # Phase 4: probe (real join, exact result).
            with obs.span("probe"):
                matches, per_gpu_matches, probe_time, match_digest = self._probe(
                    data, live_ids, num_partitions, local_passes, scale
                )
            for gpu_id in sorted(dead):
                per_gpu_matches[gpu_id] = 0

        # Compose the pipeline.  The partitioning passes of one GPU are
        # all HBM-bandwidth bound, so they serialize with each other.
        # With overlap (MG-Join), the distribution hides under that
        # compute chain — packets are produced by the global pass and
        # consumed by the local pass as they arrive — but the traffic
        # crossing HBM taxes the kernels.  Without overlap (DPRJ), the
        # transfer is fully exposed between the passes.
        compute_chain = global_pass_time + local_total_time
        if self.overlap_distribution:
            hbm_tax = self._hbm_communication_tax(flows, gpu_ids)
            phase23 = max(compute_chain + hbm_tax, distribution_time)
            exposed = phase23 - compute_chain
        else:
            exposed = distribution_time
        breakdown = PhaseBreakdown(
            histogram=histogram_time,
            partition_compute=compute_chain,
            distribution_exposed=exposed,
            probe=probe_time,
        )
        recovery_report = None
        if dead:
            recovery_report = bridge.build_report(
                shuffle_report.recovery if shuffle_report is not None else None,
                distribution_time,
            )
        if self.observer is not None:
            self._emit_simulated_timeline(
                self.observer,
                breakdown,
                global_pass_time,
                distribution_time,
                gpu_ids=gpu_ids,
                crashed_at=(
                    dict(shuffle_report.recovery.crashed_at)
                    if dead
                    and shuffle_report is not None
                    and shuffle_report.recovery is not None
                    else None
                ),
            )
        return JoinResult(
            algorithm=self.algorithm,
            num_gpus=len(gpu_ids),
            logical_tuples=workload.logical_tuples,
            real_tuples=workload.real_tuples,
            breakdown=breakdown,
            matches_real=matches,
            logical_scale=scale,
            shuffle_report=shuffle_report,
            compression_ratio=compression.ratio,
            assignment_broadcasts=assignment.num_broadcast,
            local_passes=local_passes,
            gpu_clock_hz=compute.spec.clock_hz,
            gpu_sms=compute.spec.num_sms,
            per_gpu_matches=per_gpu_matches,
            match_digest=match_digest,
            recovery=recovery_report,
        )

    def _emit_simulated_timeline(
        self,
        observer: Observer,
        breakdown: PhaseBreakdown,
        global_pass_time: float,
        distribution_time: float,
        gpu_ids: tuple[int, ...] = (),
        crashed_at: dict[int, float] | None = None,
    ) -> None:
        """Append the modelled phase schedule as simulated-clock spans.

        This is the "where does simulated time go" view (Figure 12):
        compute phases on one track, the (overlapped) distribution on a
        second, so Perfetto shows how much transfer hid under compute.
        """
        t_hist = breakdown.histogram
        t_global_end = t_hist + global_pass_time
        local_total = breakdown.partition_compute - global_pass_time
        track = "pipeline (sim)"
        observer.add_span(
            "histogram", 0.0, t_hist, track=track, category="phase"
        )
        observer.add_span(
            "global_partition", t_hist, t_global_end, track=track, category="phase"
        )
        if self.overlap_distribution:
            # Distribution runs concurrently with the compute chain;
            # only its un-hidden slice extends the critical path.
            distribution_start = t_hist
            local_start = t_global_end
        else:
            # Transfer-then-compute: the full transfer sits between the
            # global and local passes.
            distribution_start = t_global_end
            local_start = t_global_end + breakdown.distribution_exposed
        observer.add_span(
            "local_partition",
            local_start,
            local_start + local_total,
            track=track,
            category="phase",
        )
        if distribution_time > 0:
            observer.add_span(
                "distribution",
                distribution_start,
                distribution_start + distribution_time,
                track="network (sim)",
                category="phase",
                exposed_seconds=breakdown.distribution_exposed,
                overlapped=self.overlap_distribution,
            )
        probe_start = (
            t_hist + breakdown.partition_compute + breakdown.distribution_exposed
        )
        observer.add_span(
            "probe",
            probe_start,
            probe_start + breakdown.probe,
            track=track,
            category="phase",
        )
        if crashed_at:
            self._emit_crash_timeline(
                observer,
                gpu_ids,
                crashed_at,
                distribution_start,
                local_start,
                local_start + local_total,
                probe_start,
                probe_start + breakdown.probe,
            )

    @staticmethod
    def _emit_crash_timeline(
        observer: Observer,
        gpu_ids: tuple[int, ...],
        crashed_at: dict[int, float],
        distribution_start: float,
        local_start: float,
        local_end: float,
        probe_start: float,
        probe_end: float,
    ) -> None:
        """Per-GPU phase spans for a crash-recovered run.

        Crash times live on the shuffle engine clock, which starts at
        ``distribution_start`` of the pipeline timeline.  Spans of a
        crashed GPU are clamped to end at its crash instant — the trace
        shows, per GPU, that no compute happened after the crash.
        """
        for gpu_id in gpu_ids:
            track = f"gpu{gpu_id} (sim)"
            cutoff = None
            if gpu_id in crashed_at:
                cutoff = distribution_start + crashed_at[gpu_id]
                observer.instant(
                    "gpu.crashed",
                    cutoff,
                    track=track,
                    category="fault",
                    gpu=gpu_id,
                )
            for name, start, end in (
                ("local_partition", local_start, local_end),
                ("probe", probe_start, probe_end),
            ):
                if cutoff is not None:
                    if start >= cutoff:
                        continue
                    end = min(end, cutoff)
                observer.add_span(
                    name,
                    start,
                    end,
                    track=track,
                    category="phase",
                    crashed=cutoff is not None,
                )

    # ------------------------------------------------------------------
    # Pieces (template hooks overridden by the baselines)
    # ------------------------------------------------------------------

    def _make_assignment(self, histograms: HistogramSet) -> PartitionAssignment:
        return assign_partitions(
            histograms, self.machine, tuple_bytes=self.config.tuple_bytes
        )

    def _make_recovery_bridge(
        self,
        histograms: HistogramSet,
        assignment: PartitionAssignment,
        compression: CompressionModel,
        gpu_ids: tuple[int, ...],
        scale: int,
    ) -> JoinRecoveryCoordinator | None:
        """Arm join-level crash recovery when the plan can kill a GPU."""
        if self.faults is None or len(gpu_ids) < 2:
            return None
        # Lazy import: repro.faults pulls in the chaos harness, which
        # imports this module.
        from repro.faults.plan import FaultKind

        if not any(
            event.kind is FaultKind.GPU_CRASH for event in self.faults.events
        ):
            return None
        ensure_recoverable(self.faults, gpu_ids)
        return JoinRecoveryCoordinator(
            histograms,
            assignment,
            self.machine,
            compression,
            scale,
            tuple_bytes=self.config.tuple_bytes,
        )

    def _compression_model(
        self, workload: JoinWorkload, num_partitions: int
    ) -> CompressionModel:
        sample_gpu = workload.gpu_ids[0]
        shard = workload.r.shard(sample_gpu)
        order = np.argsort(partition_of(shard.keys, num_partitions), kind="stable")
        return build_compression_model(
            enabled=self.config.compression,
            num_partitions=num_partitions,
            sample_ids=shard.ids[order],
            block_bytes=self.config.compression_block_bytes,
        )

    def _simulate_distribution(
        self,
        flows: FlowMatrix,
        gpu_ids: tuple[int, ...],
        global_pass_time: float,
        compression: CompressionModel,
    ) -> ShuffleReport | None:
        if len(gpu_ids) < 2 or flows.total_bytes == 0:
            return None
        compute = self.config.compute
        if self.overlap_distribution:
            # Injection paced by the producing partition kernel,
            # consumption paced by the local-partitioning kernel.
            worst_outgoing = max(
                (sum(flows.outgoing(g).values()) for g in gpu_ids), default=0
            )
            injection_rate = (
                worst_outgoing / global_pass_time if global_pass_time > 0 else None
            )
            tuples_per_second = (
                compute.partition_efficiency
                * compute.spec.memory_bandwidth
                / (2.0 * self.config.tuple_bytes)
            )
            consume_rate = tuples_per_second * compression.bytes_per_tuple
        else:
            # Transfer-then-compute: everything is ready when the
            # transfer starts and nothing competes with it.
            injection_rate = None
            consume_rate = None
        shuffle_config = replace(
            self.config.shuffle,
            injection_rate=injection_rate,
            consume_rate=consume_rate,
        )
        tracer = None
        if self.observer is not None:
            # Per-link transfer lanes merge into the pipeline trace.
            from repro.sim.trace import Tracer

            tracer = Tracer(spans=self.observer.spans)
        simulator = ShuffleSimulator(
            self.machine, gpu_ids, shuffle_config, tracer=tracer,
            observer=self.observer, sampler=self.sampler, faults=self.faults,
            retry=self.retry, recovery_bridge=self._recovery_bridge,
            recovery_config=self.recovery,
        )
        return simulator.run(flows, self.policy)

    def _hbm_communication_tax(
        self, flows: FlowMatrix, gpu_ids: tuple[int, ...]
    ) -> float:
        """Compute-time cost of cross-GPU traffic crossing HBM.

        Every byte a GPU sends or receives is read from / written to
        its HBM by the DMA engines, stealing bandwidth from the
        partitioning kernels running at the same time.
        """
        if not flows.flows:
            return 0.0
        compute = self.config.compute
        worst = 0.0
        for gpu_id in gpu_ids:
            outgoing = sum(flows.outgoing(gpu_id).values())
            incoming = sum(
                nbytes for (_, dst), nbytes in flows.flows.items() if dst == gpu_id
            )
            worst = max(worst, float(outgoing + incoming))
        return worst / (compute.memcpy_efficiency * compute.spec.memory_bandwidth)

    def _plan_local(
        self,
        data: DistributedData,
        gpu_ids: tuple[int, ...],
        num_partitions: int,
        scale: int,
    ) -> tuple[int, float, float]:
        """Return (max passes, one-pass time, all-passes time)."""
        config = self.config
        compute = config.compute
        worst_passes = 0
        worst_pass_time = 0.0
        worst_total = 0.0
        for gpu_id in gpu_ids:
            r_shard, s_shard = data.r[gpu_id], data.s[gpu_id]
            r_hist = np.bincount(
                partition_of(r_shard.keys, num_partitions), minlength=num_partitions
            )
            s_hist = np.bincount(
                partition_of(s_shard.keys, num_partitions), minlength=num_partitions
            )
            passes = plan_local_passes(
                r_hist * scale,
                s_hist * scale,
                config.local_fanout,
                config.target_partition_tuples,
            )
            received_logical = (len(r_shard) + len(s_shard)) * scale
            pass_time = compute.partition_time(
                received_logical, config.tuple_bytes, passes=1
            )
            worst_passes = max(worst_passes, passes)
            worst_pass_time = max(worst_pass_time, pass_time)
            worst_total = max(worst_total, pass_time * passes)
        return worst_passes, worst_pass_time, worst_total

    def _probe(
        self,
        data: DistributedData,
        gpu_ids: tuple[int, ...],
        num_partitions: int,
        local_passes: int,
        scale: int,
    ) -> tuple[int, dict[int, int], float, str | None]:
        config = self.config
        compute = config.compute
        global_bits = int(np.log2(num_partitions))
        matches = 0
        per_gpu: dict[int, int] = {}
        probe_time = 0.0
        r_id_chunks: list[np.ndarray] = []
        s_id_chunks: list[np.ndarray] = []
        for gpu_id in gpu_ids:
            r_shard, s_shard = data.r[gpu_id], data.s[gpu_id]
            r_parts = refine(r_shard, global_bits, local_passes, config.local_fanout)
            s_parts = refine(s_shard, global_bits, local_passes, config.local_fanout)
            result = probe_partitions(
                r_parts,
                s_parts,
                materialize=config.materialize,
                method=config.probe_method,
                observer=self.observer,
            )
            if self.observer is not None:
                metrics = self.observer.metrics
                metrics.counter("probe.matches", gpu=gpu_id).inc(result.matches)
                metrics.counter("probe.copartitions", gpu=gpu_id).inc(
                    result.buckets_probed
                )
            if config.materialize and result.r_ids is not None:
                r_id_chunks.append(result.r_ids)
                s_id_chunks.append(result.s_ids)
            per_gpu[gpu_id] = result.matches
            matches += result.matches
            probe_time = max(
                probe_time,
                compute.probe_time(
                    len(r_shard) * scale,
                    len(s_shard) * scale,
                    result.matches * scale,
                    config.tuple_bytes,
                ),
            )
        match_digest = None
        if config.materialize:
            empty = np.empty(0, dtype=np.uint32)
            match_digest = canonical_match_digest(
                np.concatenate(r_id_chunks) if r_id_chunks else empty,
                np.concatenate(s_id_chunks) if s_id_chunks else empty,
            )
        return matches, per_gpu, probe_time, match_digest


def _single_gpu_assignment(histograms: HistogramSet) -> PartitionAssignment:
    """Everything already lives on the only GPU: nothing moves."""
    num_partitions = histograms.num_partitions
    return PartitionAssignment(
        gpu_ids=histograms.gpu_ids,
        owners=[(0,)] * num_partitions,
        broadcast_side=np.zeros(num_partitions, dtype=np.int8),
        move_cost=0.0,
    )
