"""Theta joins and cartesian products over the MG-Join substrate.

The paper notes (§3) that multi-hop transmission and adaptive routing
"optimize the data transfer irrespective of [the] type of operation
that is being performed", naming cartesian products explicitly.  This
module delivers that claim: a broadcast-based theta join where the
smaller relation is replicated to every GPU over the adaptive multi-hop
fabric and each GPU then evaluates an arbitrary predicate against its
local slice of the larger relation.

Unlike the equi-join there is no partitioning to exploit — the
communication pattern is a pure broadcast — so the routing layer is
exactly what determines performance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import MGJoinConfig
from repro.core.relation import GpuShard, JoinWorkload
from repro.routing.adaptive import AdaptiveArmPolicy
from repro.routing.base import RoutingPolicy
from repro.sim.shuffle import FlowMatrix, ShuffleSimulator
from repro.sim.stats import ShuffleReport
from repro.topology.machine import MachineTopology

#: A predicate over (build keys, probe keys) -> boolean match matrix
#: column; evaluated blockwise as ``predicate(build_key, probe_keys)``.
ThetaPredicate = Callable[[np.ndarray, np.ndarray], np.ndarray]


def less_than(build_keys: np.ndarray, probe_keys: np.ndarray) -> np.ndarray:
    """Example band predicate: ``R.key < S.key``."""
    return build_keys < probe_keys


@dataclass
class ThetaJoinResult:
    """Outcome of a broadcast theta join."""

    matches_real: int
    logical_scale: int
    broadcast_time: float
    compute_time: float
    shuffle_report: ShuffleReport | None
    per_gpu_matches: dict[int, int] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        # Broadcast overlaps nothing here: the predicate needs the
        # whole build side resident before evaluation starts.
        return self.broadcast_time + self.compute_time

    @property
    def matches_logical(self) -> int:
        # Both sides scale, so pair counts scale quadratically.
        return self.matches_real * self.logical_scale * self.logical_scale


class ThetaJoin:
    """Broadcast-based theta join / cartesian product.

    The smaller relation (by total tuples) is broadcast to every
    participating GPU using the configured routing policy; each GPU
    evaluates the predicate between the full build side and its local
    probe shard.  ``predicate=None`` yields the cartesian product.
    """

    def __init__(
        self,
        machine: MachineTopology,
        config: MGJoinConfig | None = None,
        policy: RoutingPolicy | None = None,
    ) -> None:
        self.machine = machine
        self.config = config or MGJoinConfig()
        self.policy = policy or AdaptiveArmPolicy()

    def run(
        self, workload: JoinWorkload, predicate: ThetaPredicate | None = None
    ) -> ThetaJoinResult:
        gpu_ids = workload.gpu_ids
        compute = self.config.compute
        build_rel, probe_rel = (
            (workload.r, workload.s)
            if workload.r.num_tuples <= workload.s.num_tuples
            else (workload.s, workload.r)
        )

        # Broadcast the build relation over the routed fabric.
        report = self._broadcast(build_rel, gpu_ids, workload.logical_scale)
        broadcast_time = report.elapsed if report else 0.0

        build = GpuShard.concat([build_rel.shard(g) for g in gpu_ids])
        matches = 0
        per_gpu: dict[int, int] = {}
        compute_time = 0.0
        for gpu_id in gpu_ids:
            probe = probe_rel.shard(gpu_id)
            count = self._evaluate(build, probe, predicate)
            per_gpu[gpu_id] = count
            matches += count
            pairs = (
                len(build)
                * len(probe)
                * workload.logical_scale
                * workload.logical_scale
            )
            compute_time = max(compute_time, self._pair_time(compute, pairs))
        return ThetaJoinResult(
            matches_real=matches,
            logical_scale=workload.logical_scale,
            broadcast_time=broadcast_time,
            compute_time=compute_time,
            shuffle_report=report,
            per_gpu_matches=per_gpu,
        )

    # ------------------------------------------------------------------

    def _broadcast(
        self, relation, gpu_ids: tuple[int, ...], scale: int
    ) -> ShuffleReport | None:
        if len(gpu_ids) < 2:
            return None
        flows = FlowMatrix()
        tuple_bytes = self.config.tuple_bytes
        for src in gpu_ids:
            nbytes = relation.tuples_on(src) * scale * tuple_bytes
            for dst in gpu_ids:
                if src != dst and nbytes:
                    flows.add(src, dst, nbytes)
        if flows.total_bytes == 0:
            return None
        simulator = ShuffleSimulator(self.machine, gpu_ids, self.config.shuffle)
        return simulator.run(flows, self.policy)

    @staticmethod
    def _evaluate(
        build: GpuShard, probe: GpuShard, predicate: ThetaPredicate | None
    ) -> int:
        if len(build) == 0 or len(probe) == 0:
            return 0
        if predicate is None:
            return len(build) * len(probe)
        # Blockwise evaluation keeps the match matrix small (the GPU
        # kernel would tile the same way over shared memory).
        matches = 0
        block = 4096
        for start in range(0, len(build), block):
            block_keys = build.keys[start : start + block]
            # Broadcasting: (block, 1) against (probe,) -> (block, probe).
            hits = predicate(block_keys[:, None], probe.keys[None, :])
            matches += int(np.count_nonzero(hits))
        return matches

    @staticmethod
    def _pair_time(compute, pairs: float) -> float:
        """Predicate evaluations are compute-bound: model a per-pair
        cost of one fused ALU op per SM lane."""
        spec = compute.spec
        pair_rate = spec.num_sms * 64 * spec.clock_hz  # lanes x clock
        return spec.kernel_launch_overhead + pairs / pair_rate
