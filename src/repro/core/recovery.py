"""Join-level crash recovery (the recovery coordinator).

PR 3 made the *shuffle* survive faults; this module makes the *join*
survive the loss of whole GPUs.  The key enabler is the paper's
replicated global histograms: every GPU (and therefore the
coordinator) already knows exactly how many tuples of every radix
partition live on every GPU, so after a crash the ownership of the
dead GPU's partitions can be recomputed for the survivors — using the
same migration / selective-broadcast cost model as the original
assignment — and only the lost partitions re-shuffled from their
source GPUs (sources re-read from the original, host-resident
relations; no full restart).

Split of responsibilities:

* :class:`JoinRecoveryCoordinator` (here) owns the *join-level* state:
  histograms, the live :class:`PartitionAssignment`, and the cost
  model.  Its :meth:`on_gpu_dead` is called by the sim-level
  :class:`~repro.sim.recovery.CrashCoordinator` when the heartbeat
  monitor declares a GPU dead, and returns the re-shuffle flow matrix.
* The sim-level coordinator owns clocks, packets and byte conservation.

Because the functional data path (:func:`~repro.core.global_partition.
execute_distribution`) runs once against the *final* assignment, the
faulted join's match set is byte-identical to the healthy run's — the
headline guarantee asserted by :func:`canonical_match_digest`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.assignment import (
    DEFAULT_PROCESS_COST_PER_TUPLE,
    NO_BROADCAST,
    PartitionAssignment,
    pairwise_tuple_cost,
)
from repro.sim.shuffle import FlowMatrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compression import CompressionModel
    from repro.core.histogram import HistogramSet
    from repro.faults.plan import FaultPlan
    from repro.sim.stats import RecoveryStats
    from repro.topology.machine import MachineTopology


class RecoveryError(RuntimeError):
    """The join cannot be recovered (e.g. no survivors remain)."""


@dataclass(frozen=True)
class RecoveryReport:
    """Join-level recovery summary attached to a :class:`JoinResult`."""

    dead_gpus: tuple[int, ...]
    survivors: tuple[int, ...]
    #: Declaration minus crash time per dead GPU, seconds.
    detection_latency: dict[int, float]
    partitions_reassigned: int
    reshuffled_bytes: int
    host_resent_bytes: int
    checkpoint_restored_bytes: int
    bytes_discarded: int
    #: Wall-clock from the first crash to the end of the shuffle.
    recovery_elapsed: float
    #: Fraction of the distribution step spent in degraded mode.
    recovery_time_share: float

    @property
    def max_detection_latency(self) -> float:
        return max(self.detection_latency.values(), default=0.0)

    def summary_lines(self) -> list[str]:
        dead = ", ".join(f"gpu{g}" for g in self.dead_gpus)
        return [
            f"dead GPUs            : {dead}",
            f"survivors            : {len(self.survivors)}",
            f"detection latency    : {self.max_detection_latency * 1e3:.3f} ms (max)",
            f"partitions reassigned: {self.partitions_reassigned}",
            f"re-shuffled          : {self.reshuffled_bytes / 1e6:.1f} MB",
            f"host re-sent         : {self.host_resent_bytes / 1e6:.1f} MB",
            f"checkpoint restored  : {self.checkpoint_restored_bytes / 1e6:.1f} MB",
            f"discarded at crash   : {self.bytes_discarded / 1e6:.1f} MB",
            f"recovery time share  : {self.recovery_time_share * 100:.1f}%",
        ]


def ensure_recoverable(plan: "FaultPlan", gpu_ids: tuple[int, ...]) -> None:
    """Reject plans recovery cannot bridge (no survivors would remain).

    Raises :class:`RecoveryError` when the plan crashes every
    participating GPU: with zero survivors there is nowhere to reassign
    partitions to, not even via host staging.
    """
    from repro.faults.plan import FaultKind

    crashes = sorted(
        {
            event.gpu
            for event in plan.events
            if event.kind is FaultKind.GPU_CRASH and event.gpu is not None
        }
    )
    survivors = sorted(set(gpu_ids) - set(crashes))
    if crashes and not survivors:
        raise RecoveryError(
            f"fault plan {plan.name!r} crashes every participating GPU "
            f"({', '.join(f'gpu{g}' for g in crashes)}); no survivors "
            f"remain to reassign partitions to, so the join cannot be "
            f"recovered even via host staging"
        )


def canonical_match_digest(
    r_ids: np.ndarray, s_ids: np.ndarray
) -> str:
    """Order-independent digest of a materialized match set.

    The (r_id, s_id) pairs are lexicographically sorted before hashing,
    so two runs producing the same *set* of matches — regardless of
    which GPU produced which pair, or in what order — get the same
    digest.  This is the byte-identity check between healthy and
    recovered joins.
    """
    order = np.lexsort((s_ids, r_ids))
    payload = np.ascontiguousarray(
        np.stack([r_ids[order], s_ids[order]]).astype(np.uint64)
    ).tobytes()
    return hashlib.sha256(payload).hexdigest()


class JoinRecoveryCoordinator:
    """Recomputes partition ownership for survivors after GPU crashes.

    Holds the replicated histograms and the live assignment.  Each
    :meth:`on_gpu_dead` call (one per declared crash, possibly several
    in one run) demotes every partition the dead GPU owned — including
    its share of selective-broadcast partitions — to a single-owner
    migration onto the cheapest, least-loaded survivor, using the same
    per-tuple route cost matrix and load-balance rule as
    :func:`~repro.core.assignment.assign_partitions`.  It returns the
    re-shuffle :class:`FlowMatrix` (the bytes each source must re-send
    to the new owners) and exposes :attr:`final_assignment` for the
    functional data path.
    """

    def __init__(
        self,
        histograms: "HistogramSet",
        assignment: PartitionAssignment,
        machine: "MachineTopology",
        compression: "CompressionModel",
        logical_scale: int,
        *,
        tuple_bytes: int = 8,
        process_cost_per_tuple: float = DEFAULT_PROCESS_COST_PER_TUPLE,
    ) -> None:
        self.histograms = histograms
        self.machine = machine
        self.compression = compression
        self.logical_scale = logical_scale
        self.tuple_bytes = tuple_bytes
        self.process_cost_per_tuple = process_cost_per_tuple
        self.gpu_ids = assignment.gpu_ids
        self._position = {g: pos for pos, g in enumerate(self.gpu_ids)}
        # Work on a copy: the original assignment object stays valid as
        # "what the healthy run decided".
        self._owners = list(assignment.owners)
        self._broadcast_side = assignment.broadcast_side.copy()
        self._move_cost = assignment.move_cost
        self._dead: list[int] = []
        self.partitions_reassigned = 0
        self.reshuffled_bytes = 0
        r_counts, s_counts = histograms.stacked()
        self._both = (r_counts + s_counts).astype(np.float64)
        self._cost = pairwise_tuple_cost(machine, self.gpu_ids, tuple_bytes)
        #: migrate_cost[o, p]: cost of moving partition p's tuples to
        #: owner position o (same matrix as assign_partitions).
        self._migrate_cost = self._cost.T @ self._both

    # ------------------------------------------------------------------

    @property
    def dead_gpus(self) -> tuple[int, ...]:
        return tuple(self._dead)

    def survivors(self) -> tuple[int, ...]:
        return tuple(g for g in self.gpu_ids if g not in self._dead)

    @property
    def final_assignment(self) -> PartitionAssignment:
        """The assignment after every reassignment so far.

        Keeps the original ``gpu_ids`` (positions stay comparable); no
        partition is owned by a dead position anymore.
        """
        return PartitionAssignment(
            gpu_ids=self.gpu_ids,
            owners=list(self._owners),
            broadcast_side=self._broadcast_side.copy(),
            move_cost=self._move_cost,
        )

    # ------------------------------------------------------------------

    def on_gpu_dead(
        self, dead_gpu: int, survivors: tuple[int, ...] | None = None
    ) -> FlowMatrix:
        """Reassign the dead GPU's partitions; return re-shuffle flows.

        ``survivors`` defaults to the participants not yet declared
        dead here; the sim coordinator passes its own view so the two
        layers can never disagree.
        """
        if dead_gpu not in self._position:
            raise RecoveryError(f"gpu{dead_gpu} is not a join participant")
        if dead_gpu in self._dead:
            return FlowMatrix()
        self._dead.append(dead_gpu)
        if survivors is None:
            survivors = self.survivors()
        survivor_positions = [
            self._position[g] for g in survivors if g not in self._dead
        ]
        if not survivor_positions:
            raise RecoveryError(
                f"gpu{dead_gpu} was the last live GPU of the join; no "
                f"survivors remain to reassign its partitions to"
            )
        dead_pos = self._position[dead_gpu]
        affected = [
            p
            for p, owner_positions in enumerate(self._owners)
            if dead_pos in owner_positions
        ]
        # Current load of each survivor position: tuples it owns under
        # the (already partially reassigned) assignment, excluding the
        # partitions about to move.
        load = np.zeros(len(self.gpu_ids), dtype=np.float64)
        affected_set = set(affected)
        partition_sizes = self._both.sum(axis=0)
        for p, owner_positions in enumerate(self._owners):
            if p in affected_set or not owner_positions:
                continue
            share = float(partition_sizes[p]) / len(owner_positions)
            for pos in owner_positions:
                load[pos] += share
        survivor_idx = np.asarray(survivor_positions, dtype=np.int64)
        # Largest partitions first, like the original optimizer: the
        # load-balance term then spreads the heavy hitters.
        reshuffle_tuples: dict[tuple[int, int], int] = {}
        for p in sorted(affected, key=lambda p: -partition_sizes[p]):
            size = float(partition_sizes[p])
            total = self._migrate_cost[survivor_idx, p] + (
                self.process_cost_per_tuple * (load[survivor_idx] + size)
            )
            new_pos = int(survivor_idx[int(np.argmin(total))])
            load[new_pos] += size
            self._move_cost += float(self._migrate_cost[new_pos, p])
            self._owners[p] = (new_pos,)
            self._broadcast_side[p] = NO_BROADCAST
            self.partitions_reassigned += 1
            # The new owner re-collects the whole partition from the
            # original (host-resident) relations: every source's share,
            # both relations.  Its own share never crosses the fabric.
            new_owner = self.gpu_ids[new_pos]
            for src_pos, src in enumerate(self.gpu_ids):
                if src == new_owner:
                    continue
                tuples = int(self._both[src_pos, p]) * self.logical_scale
                if tuples:
                    key = (src, new_owner)
                    reshuffle_tuples[key] = reshuffle_tuples.get(key, 0) + tuples
        flows = FlowMatrix()
        for (src, dst), tuples in sorted(reshuffle_tuples.items()):
            flows.add(src, dst, self.compression.flow_bytes(tuples))
        self.reshuffled_bytes += flows.total_bytes
        return flows

    # ------------------------------------------------------------------

    def build_report(
        self,
        recovery_stats: "RecoveryStats | None",
        distribution_time: float = 0.0,
    ) -> RecoveryReport:
        """Combine join-level and sim-level recovery telemetry."""
        detection = (
            dict(recovery_stats.detection_latency)
            if recovery_stats is not None
            else {}
        )
        elapsed = (
            recovery_stats.recovery_elapsed if recovery_stats is not None else 0.0
        )
        share = (
            recovery_stats.recovery_share(distribution_time)
            if recovery_stats is not None
            else 0.0
        )
        return RecoveryReport(
            dead_gpus=tuple(self._dead),
            survivors=self.survivors(),
            detection_latency=detection,
            partitions_reassigned=self.partitions_reassigned,
            reshuffled_bytes=self.reshuffled_bytes,
            host_resent_bytes=(
                recovery_stats.host_resent_bytes if recovery_stats else 0
            ),
            checkpoint_restored_bytes=(
                recovery_stats.checkpoint_restored_bytes if recovery_stats else 0
            ),
            bytes_discarded=(
                recovery_stats.bytes_discarded if recovery_stats else 0
            ),
            recovery_elapsed=elapsed,
            recovery_time_share=share,
        )
