"""Phase 1: histogram generation (paper §3.2, Rationale 3).

Each GPU scans its local shard of both relations and counts tuples per
radix partition.  The histogram lives in GPU shared memory, so the
partition count is capped by Equation 1:

    P_max = M_s / (Ĥ_s · T_b)

With a V100's 32 KB of usable shared memory per SM, 4-byte entries and
two thread blocks per SM this yields the paper's 4,096 partitions.
MG-Join always generates this maximum (it both balances load better and
cuts local-partitioning work).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.relation import DistributedRelation
from repro.sim.compute import GpuSpec


def max_partitions(
    spec: GpuSpec, histogram_entry_bytes: int = 4, thread_blocks_per_sm: int = 2
) -> int:
    """Equation 1, rounded down to a power of two for radix use."""
    if histogram_entry_bytes < 1 or thread_blocks_per_sm < 1:
        raise ValueError("entry size and thread blocks must be positive")
    raw = spec.shared_memory_per_sm // (histogram_entry_bytes * thread_blocks_per_sm)
    if raw < 1:
        raise ValueError("shared memory too small for even one histogram entry")
    return 1 << (int(raw).bit_length() - 1)


def partition_of(keys: np.ndarray, num_partitions: int) -> np.ndarray:
    """Radix partition id of each key (low-order bits, paper §5.1)."""
    if num_partitions & (num_partitions - 1):
        raise ValueError(f"num_partitions must be a power of two, got {num_partitions}")
    return (keys & np.uint32(num_partitions - 1)).astype(np.int64)


@dataclass
class HistogramSet:
    """Per-GPU, per-relation partition histograms.

    ``r[gpu]`` / ``s[gpu]`` are int64 arrays of length
    ``num_partitions`` counting *real* tuples; multiply by the workload
    scale for logical sizes.
    """

    num_partitions: int
    r: dict[int, np.ndarray]
    s: dict[int, np.ndarray]

    @property
    def gpu_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self.r))

    def totals(self) -> tuple[np.ndarray, np.ndarray]:
        """Global per-partition counts for (R, S)."""
        r_total = np.zeros(self.num_partitions, dtype=np.int64)
        s_total = np.zeros(self.num_partitions, dtype=np.int64)
        for gpu_id in self.gpu_ids:
            r_total += self.r[gpu_id]
            s_total += self.s[gpu_id]
        return r_total, s_total

    def stacked(self) -> tuple[np.ndarray, np.ndarray]:
        """(G, P) matrices of counts for (R, S), rows ordered by GPU id."""
        gpu_ids = self.gpu_ids
        r = np.stack([self.r[g] for g in gpu_ids])
        s = np.stack([self.s[g] for g in gpu_ids])
        return r, s


def build_histograms(
    r: DistributedRelation, s: DistributedRelation, num_partitions: int
) -> HistogramSet:
    """Count tuples per partition on every GPU (the phase-1 kernel)."""
    histograms_r: dict[int, np.ndarray] = {}
    histograms_s: dict[int, np.ndarray] = {}
    for gpu_id in r.gpu_ids:
        histograms_r[gpu_id] = np.bincount(
            partition_of(r.shard(gpu_id).keys, num_partitions),
            minlength=num_partitions,
        ).astype(np.int64)
        histograms_s[gpu_id] = np.bincount(
            partition_of(s.shard(gpu_id).keys, num_partitions),
            minlength=num_partitions,
        ).astype(np.int64)
    return HistogramSet(num_partitions=num_partitions, r=histograms_r, s=histograms_s)
