"""Configuration of the MG-Join pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.compute import GpuComputeModel
from repro.sim.shuffle import ShuffleConfig


@dataclass(frozen=True)
class MGJoinConfig:
    """All tunables of an MG-Join run.

    The defaults reproduce the paper's configuration on the DGX-1:
    4,096 global partitions (Eq. 1 with a V100's shared memory), 2 MB
    packets in batches of 8, compression enabled, adaptive routing.
    """

    #: Number of global partitions; ``None`` derives P_max from Eq. 1.
    num_partitions: int | None = None
    #: Histogram entry size Ĥ_s in bytes (Eq. 1).
    histogram_entry_bytes: int = 4
    #: Thread blocks per SM T_b (Eq. 1).
    thread_blocks_per_sm: int = 2
    #: Fan-out of each local (histogram-free) partitioning pass.
    local_fanout: int = 512
    #: Largest co-partition joinable in shared memory, in tuples.
    target_partition_tuples: int = 3072
    #: Apply the paper's key-prefix + delta/null-suppression compression
    #: to cross-GPU traffic (§5.1).
    compression: bool = True
    #: Compression block size for tuple ids (§5.1: 8 KB blocks).
    compression_block_bytes: int = 8192
    #: Tuple layout: 4-byte key + 4-byte tuple id.
    key_bytes: int = 4
    id_bytes: int = 4
    #: Data-distribution machinery settings (packet size, batching,
    #: buffers, broadcast behaviour).
    shuffle: ShuffleConfig = field(default_factory=ShuffleConfig)
    #: GPU kernel cost model.
    compute: GpuComputeModel = field(default_factory=GpuComputeModel)
    #: Materialize matched (r_id, s_id) pairs instead of counting them.
    materialize: bool = False
    #: Probe kernel: "nested-loop" (the paper's choice) or "hash" (a
    #: shared-memory hash table); both are exact and perform alike.
    probe_method: str = "nested-loop"

    @property
    def tuple_bytes(self) -> int:
        return self.key_bytes + self.id_bytes

    def __post_init__(self) -> None:
        if self.num_partitions is not None and self.num_partitions < 1:
            raise ValueError("num_partitions must be positive")
        if self.local_fanout < 2:
            raise ValueError("local_fanout must be >= 2")
        if self.target_partition_tuples < 1:
            raise ValueError("target_partition_tuples must be positive")
        if self.probe_method not in ("nested-loop", "hash"):
            raise ValueError(
                f"probe_method must be 'nested-loop' or 'hash',"
                f" got {self.probe_method!r}"
            )
