"""MG-Join: the paper's primary contribution.

A partitioned hash join over relations distributed across the GPUs of a
single multi-GPU machine, in four phases (§3.2):

1. **Histogram generation** (:mod:`repro.core.histogram`)
2. **Global partitioning** — partition assignment
   (:mod:`repro.core.assignment`) plus the data-distribution step driven
   by the adaptive multi-hop routing of :mod:`repro.routing`
   (:mod:`repro.core.global_partition`)
3. **Local partitioning** (:mod:`repro.core.local_partition`)
4. **Probe** (:mod:`repro.core.probe`)

Every phase runs *functionally* on real numpy data (the join result is
exact) while phase costs are modelled at the workload's logical scale.
"""

from repro.core.config import MGJoinConfig
from repro.core.relation import DistributedRelation, JoinWorkload
from repro.core.histogram import HistogramSet, build_histograms, max_partitions
from repro.core.assignment import PartitionAssignment, assign_partitions
from repro.core.compression import CompressionModel, compress_ids, decompress_ids
from repro.core.mgjoin import JoinResult, MGJoin, PhaseBreakdown
from repro.core.recovery import (
    JoinRecoveryCoordinator,
    RecoveryError,
    RecoveryReport,
    canonical_match_digest,
    ensure_recoverable,
)

__all__ = [
    "CompressionModel",
    "DistributedRelation",
    "HistogramSet",
    "JoinRecoveryCoordinator",
    "JoinResult",
    "JoinWorkload",
    "MGJoin",
    "MGJoinConfig",
    "PartitionAssignment",
    "PhaseBreakdown",
    "RecoveryError",
    "RecoveryReport",
    "assign_partitions",
    "build_histograms",
    "canonical_match_digest",
    "compress_ids",
    "decompress_ids",
    "ensure_recoverable",
    "max_partitions",
]
