"""Phase 2b: global partitioning and the data-distribution flow plan.

Two jobs, mirroring the paper's step 1 and step 3 of the global
partitioning phase:

* :func:`plan_flows` — turn histograms + partition assignment +
  compression model into the :class:`FlowMatrix` the shuffle simulator
  routes (sizes at *logical* scale).
* :func:`execute_distribution` — actually move the numpy tuples so the
  rest of the pipeline (local partitioning, probe) runs on real data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import (
    BROADCAST_R,
    BROADCAST_S,
    NO_BROADCAST,
    PartitionAssignment,
)
from repro.core.compression import CompressionModel
from repro.core.histogram import HistogramSet, partition_of
from repro.core.relation import DistributedRelation, GpuShard
from repro.sim.shuffle import FlowMatrix


def plan_flows(
    histograms: HistogramSet,
    assignment: PartitionAssignment,
    compression: CompressionModel,
    logical_scale: int,
) -> FlowMatrix:
    """Bytes each GPU must push to each other GPU, at logical scale."""
    gpu_ids = histograms.gpu_ids
    r_counts, s_counts = histograms.stacked()
    owner_map = assignment.single_owner_map()
    flows = FlowMatrix()

    # Migrated partitions, vectorized per (source, owner) pair.
    both = r_counts + s_counts
    for src_pos, src in enumerate(gpu_ids):
        for dst_pos, dst in enumerate(gpu_ids):
            if src == dst:
                continue
            mask = owner_map == dst_pos
            tuples = int(both[src_pos, mask].sum()) * logical_scale
            if tuples:
                flows.add(src, dst, compression.flow_bytes(tuples))

    # Broadcast partitions: the moving relation goes to every owner.
    for p in np.nonzero(assignment.broadcast_side != NO_BROADCAST)[0]:
        moving = r_counts if assignment.broadcast_side[p] == BROADCAST_R else s_counts
        owner_positions = assignment.owners[int(p)]
        for src_pos, src in enumerate(gpu_ids):
            tuples = int(moving[src_pos, p]) * logical_scale
            if tuples == 0:
                continue
            for dst_pos in owner_positions:
                if dst_pos == src_pos:
                    continue
                flows.add(src, gpu_ids[dst_pos], compression.flow_bytes(tuples))
    return flows


@dataclass
class DistributedData:
    """Per-GPU tuples after the data-distribution step."""

    r: dict[int, GpuShard]
    s: dict[int, GpuShard]

    def received_tuples(self, gpu_id: int) -> int:
        return len(self.r[gpu_id]) + len(self.s[gpu_id])


def execute_distribution(
    r: DistributedRelation,
    s: DistributedRelation,
    histograms: HistogramSet,
    assignment: PartitionAssignment,
) -> DistributedData:
    """Physically redistribute the numpy tuples per the assignment."""
    gpu_ids = histograms.gpu_ids
    position = {gpu_id: pos for pos, gpu_id in enumerate(gpu_ids)}
    owner_map = assignment.single_owner_map()
    num_partitions = histograms.num_partitions

    received_r: dict[int, list[GpuShard]] = {g: [] for g in gpu_ids}
    received_s: dict[int, list[GpuShard]] = {g: [] for g in gpu_ids}

    broadcast_partitions = np.nonzero(assignment.broadcast_side != NO_BROADCAST)[0]
    broadcast_set = set(int(p) for p in broadcast_partitions)

    for relation, received, moving_marker in (
        (r, received_r, BROADCAST_R),
        (s, received_s, BROADCAST_S),
    ):
        for src in gpu_ids:
            shard = relation.shard(src)
            pids = partition_of(shard.keys, num_partitions)
            # Single-owner partitions: scatter by owner GPU.
            dest_positions = owner_map[pids]
            for dst_pos, dst in enumerate(gpu_ids):
                mask = dest_positions == dst_pos
                if not np.any(mask):
                    continue
                received[dst].append(GpuShard(shard.keys[mask], shard.ids[mask]))
            # Broadcast partitions: this relation either moves to every
            # owner (if it is the broadcast side) or stays put on the
            # owners (if it is the kept side).
            for p in broadcast_set:
                mask = pids == p
                if not np.any(mask):
                    continue
                piece = GpuShard(shard.keys[mask], shard.ids[mask])
                owner_positions = assignment.owners[p]
                if assignment.broadcast_side[p] == moving_marker:
                    for dst_pos in owner_positions:
                        received[gpu_ids[dst_pos]].append(piece)
                else:
                    if position[src] in owner_positions:
                        received[src].append(piece)

    return DistributedData(
        r={g: GpuShard.concat(received_r[g]) for g in gpu_ids},
        s={g: GpuShard.concat(received_s[g]) for g in gpu_ids},
    )
