"""Phase 4: probing co-partitions (paper §3.2).

Once co-partitions are small, the paper joins each pair with a simple
nested-loop (or shared-memory hash) kernel — the two perform alike at
these sizes, so MG-Join uses the nested loop.  Functionally we need the
*exact* equi-join result, which a sort + binary-search implementation
delivers with full duplicate handling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.local_partition import LocalPartitions
from repro.core.relation import GpuShard


@dataclass
class ProbeResult:
    """Join output of one GPU (counts, optionally materialized pairs)."""

    matches: int = 0
    r_ids: np.ndarray | None = None
    s_ids: np.ndarray | None = None
    #: Number of co-partition pairs probed (for cost accounting).
    buckets_probed: int = 0
    _chunks: list[tuple[np.ndarray, np.ndarray]] = field(default_factory=list)

    def add(self, r_ids: np.ndarray, s_ids: np.ndarray, materialize: bool) -> None:
        self.matches += len(r_ids)
        if materialize:
            self._chunks.append((r_ids, s_ids))

    def finalize(self, materialize: bool) -> "ProbeResult":
        if materialize:
            if self._chunks:
                self.r_ids = np.concatenate([c[0] for c in self._chunks])
                self.s_ids = np.concatenate([c[1] for c in self._chunks])
            else:
                self.r_ids = np.empty(0, dtype=np.uint32)
                self.s_ids = np.empty(0, dtype=np.uint32)
        self._chunks = []
        return self


def join_shards(
    r: GpuShard, s: GpuShard, materialize: bool = False
) -> tuple[np.ndarray, np.ndarray] | int:
    """Exact equi-join of two shards; handles duplicate keys.

    This is the *nested-loop-style* kernel stand-in (sorted search per
    probe tuple).  Returns the match count, or the matched
    ``(r_id, s_id)`` arrays when ``materialize`` is set.
    """
    if len(r) == 0 or len(s) == 0:
        if materialize:
            empty = np.empty(0, dtype=np.uint32)
            return empty, empty
        return 0
    order = np.argsort(s.keys, kind="stable")
    s_keys_sorted = s.keys[order]
    left = np.searchsorted(s_keys_sorted, r.keys, side="left")
    right = np.searchsorted(s_keys_sorted, r.keys, side="right")
    counts = right - left
    total = int(counts.sum())
    if not materialize:
        return total
    r_ids = np.repeat(r.ids, counts)
    # For each R tuple, the matching S rows are the consecutive run
    # s_keys_sorted[left:right]; build their indices run by run.
    offsets = np.repeat(left, counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    s_ids = s.ids[order[offsets + within]]
    return r_ids, s_ids


def join_shards_hash(
    r: GpuShard, s: GpuShard, materialize: bool = False
) -> tuple[np.ndarray, np.ndarray] | int:
    """Equi-join via an explicit (shared-memory-style) hash table.

    The paper's probe builds a hash table over one co-partition in GPU
    shared memory; this variant mirrors that structure — group the
    build side by key, look probe keys up — and must always agree with
    :func:`join_shards` (the nested-loop variant).  "Existing
    literature has demonstrated that both implementations achieve
    similar performance for most partition sizes" (§3.2).
    """
    if len(r) == 0 or len(s) == 0:
        if materialize:
            empty = np.empty(0, dtype=np.uint32)
            return empty, empty
        return 0
    # Build: bucketize the build side (S) by unique key.
    unique_keys, inverse, counts = np.unique(
        s.keys, return_inverse=True, return_counts=True
    )
    # Probe: locate each R key among the unique build keys.
    slot = np.searchsorted(unique_keys, r.keys)
    slot = np.clip(slot, 0, len(unique_keys) - 1)
    hit = unique_keys[slot] == r.keys
    per_probe = np.where(hit, counts[slot], 0)
    total = int(per_probe.sum())
    if not materialize:
        return total
    # Group build-side row ids by key for expansion.
    build_order = np.argsort(inverse, kind="stable")
    group_starts = np.cumsum(counts) - counts
    r_ids = np.repeat(r.ids, per_probe)
    offsets = np.repeat(group_starts[slot], per_probe)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(per_probe) - per_probe, per_probe
    )
    s_ids = s.ids[build_order[offsets + within]]
    return r_ids, s_ids


#: Probe kernel implementations selectable via MGJoinConfig.
PROBE_METHODS = {
    "nested-loop": join_shards,
    "hash": join_shards_hash,
}


def probe_partitions(
    r_parts: LocalPartitions,
    s_parts: LocalPartitions,
    materialize: bool = False,
    method: str = "nested-loop",
    observer=None,
) -> ProbeResult:
    """Join matching buckets of the two local partition sets.

    With an :class:`~repro.obs.Observer`, the per-co-partition match
    counts feed the ``probe.matches_per_copartition`` histogram — the
    skew forensics view of the probe phase.

    The join runs as *one* whole-shard sorted pass instead of a Python
    loop over co-partition buckets: both sides are already grouped by
    bucket, so one stable ``lexsort`` of the build side by
    ``(bucket, key)`` followed by a single ``searchsorted`` over packed
    ``bucket:key`` probes reproduces the per-bucket kernels exactly —
    match counts, histogram observations (bucket order), row-id output
    order, everything.  Both probe methods compute identical output (a
    run of equal keys is a hash group), which
    ``tests/core/test_probe_vectorized.py`` pins against the bucketed
    reference loop kept below.
    """
    if r_parts.bucket_bits != s_parts.bucket_bits:
        raise ValueError("co-partitions were refined to different depths")
    if method not in PROBE_METHODS:
        raise ValueError(
            f"unknown probe method {method!r}; have {sorted(PROBE_METHODS)}"
        )
    match_histogram = (
        observer.metrics.histogram("probe.matches_per_copartition")
        if observer is not None
        else None
    )
    result = ProbeResult()
    if r_parts.num_buckets == 0 or s_parts.num_buckets == 0:
        return result.finalize(materialize)
    shared, r_pos, _ = np.intersect1d(
        r_parts.bucket_ids, s_parts.bucket_ids, return_indices=True
    )
    if len(shared) == 0:
        return result.finalize(materialize)
    result.buckets_probed = len(shared)
    r_shard, s_shard = r_parts.shard, s_parts.shard
    # Bucket-grouped views (the order the bucketed loop would visit).
    r_rows = r_parts.order
    s_rows = s_parts.order
    r_buckets = np.repeat(r_parts.bucket_ids, np.diff(r_parts.boundaries))
    s_buckets = np.repeat(s_parts.bucket_ids, np.diff(s_parts.boundaries))
    # Pack (bucket, key) into one sortable uint64 probe key.  Bucket ids
    # and keys are both < 2**32, so the packing is collision-free.
    r_combo = (r_buckets.astype(np.uint64) << np.uint64(32)) | r_shard.keys[
        r_rows
    ].astype(np.uint64)
    s_combo = (s_buckets.astype(np.uint64) << np.uint64(32)) | s_shard.keys[
        s_rows
    ].astype(np.uint64)
    # Stable sort by (bucket, key): ties keep bucket-grouped order, i.e.
    # exactly the per-bucket stable argsort the kernels perform.
    s_order = np.lexsort((s_shard.keys[s_rows], s_buckets))
    s_combo_sorted = s_combo[s_order]
    left = np.searchsorted(s_combo_sorted, r_combo, side="left")
    right = np.searchsorted(s_combo_sorted, r_combo, side="right")
    counts = right - left
    result.matches = int(counts.sum())
    if match_histogram is not None:
        per_bucket = np.add.reduceat(counts, r_parts.boundaries[:-1])
        for pos in r_pos:
            match_histogram.observe(int(per_bucket[pos]))
    if materialize:
        total = result.matches
        result.r_ids = np.repeat(r_shard.ids[r_rows], counts)
        offsets = np.repeat(left, counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        result.s_ids = s_shard.ids[s_rows][s_order[offsets + within]]
        result._chunks = []
        return result
    return result.finalize(materialize)


def probe_partitions_bucketed(
    r_parts: LocalPartitions,
    s_parts: LocalPartitions,
    materialize: bool = False,
    method: str = "nested-loop",
    observer=None,
) -> ProbeResult:
    """Reference bucket-by-bucket probe loop.

    Kept as the semantic specification of :func:`probe_partitions`: it
    joins each shared co-partition with the selected kernel, one pair
    at a time.  The vectorized path must match it exactly — counts,
    ``buckets_probed``, histogram observations and materialized row-id
    order — which the identity test enforces.
    """
    if r_parts.bucket_bits != s_parts.bucket_bits:
        raise ValueError("co-partitions were refined to different depths")
    try:
        kernel = PROBE_METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown probe method {method!r}; have {sorted(PROBE_METHODS)}"
        ) from None
    match_histogram = (
        observer.metrics.histogram("probe.matches_per_copartition")
        if observer is not None
        else None
    )
    result = ProbeResult()
    s_index = {int(b): i for i, b in enumerate(s_parts.bucket_ids)}
    for r_index, bucket_id in enumerate(r_parts.bucket_ids):
        s_pos = s_index.get(int(bucket_id))
        if s_pos is None:
            continue
        r_bucket = r_parts.bucket(r_index)
        s_bucket = s_parts.bucket(s_pos)
        joined = kernel(r_bucket, s_bucket, materialize=materialize)
        result.buckets_probed += 1
        if materialize:
            bucket_matches = len(joined[0])
            result.add(joined[0], joined[1], materialize=True)
        else:
            bucket_matches = joined
            result.matches += joined
        if match_histogram is not None:
            match_histogram.observe(bucket_matches)
    return result.finalize(materialize)
