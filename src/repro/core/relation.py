"""Distributed relations: the join's input data structure.

A relation is a pair of parallel numpy columns — a 4-byte join key and a
4-byte tuple id (the paper's 8-byte tuple, §5.1) — sharded across the
GPUs of the machine.  The *logical scale* lets a laptop-sized array
stand in for the paper's multi-billion-tuple inputs: every real tuple
represents ``logical_scale`` logical tuples in the cost model, while all
functional work (partitioning, shuffling, probing) runs on the real
arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

KEY_DTYPE = np.uint32
ID_DTYPE = np.uint32


@dataclass
class GpuShard:
    """One GPU's slice of a relation."""

    keys: np.ndarray
    ids: np.ndarray

    def __post_init__(self) -> None:
        if self.keys.shape != self.ids.shape:
            raise ValueError("keys and ids must have the same length")
        if self.keys.dtype != KEY_DTYPE:
            self.keys = self.keys.astype(KEY_DTYPE, copy=False)
        if self.ids.dtype != ID_DTYPE:
            self.ids = self.ids.astype(ID_DTYPE, copy=False)

    def __len__(self) -> int:
        return len(self.keys)

    @staticmethod
    def empty() -> "GpuShard":
        return GpuShard(np.empty(0, dtype=KEY_DTYPE), np.empty(0, dtype=ID_DTYPE))

    @staticmethod
    def concat(shards: list["GpuShard"]) -> "GpuShard":
        if not shards:
            return GpuShard.empty()
        return GpuShard(
            np.concatenate([s.keys for s in shards]),
            np.concatenate([s.ids for s in shards]),
        )


@dataclass
class DistributedRelation:
    """A relation sharded over a set of GPUs."""

    name: str
    shards: dict[int, GpuShard] = field(default_factory=dict)

    @property
    def gpu_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self.shards))

    @property
    def num_tuples(self) -> int:
        return sum(len(shard) for shard in self.shards.values())

    def shard(self, gpu_id: int) -> GpuShard:
        return self.shards[gpu_id]

    def tuples_on(self, gpu_id: int) -> int:
        return len(self.shards.get(gpu_id, GpuShard.empty()))

    def all_keys(self) -> np.ndarray:
        if not self.shards:
            return np.empty(0, dtype=KEY_DTYPE)
        return np.concatenate(
            [self.shards[g].keys for g in self.gpu_ids]
        )

    def validate(self) -> None:
        for gpu_id, shard in self.shards.items():
            if gpu_id < 0:
                raise ValueError(f"invalid GPU id {gpu_id}")
            if shard.keys.ndim != 1:
                raise ValueError("relation columns must be one-dimensional")


@dataclass
class JoinWorkload:
    """An equi-join input: R ⋈ S plus the logical scaling factor.

    ``logical_scale`` is the number of logical tuples each real tuple
    stands for; the cost model multiplies all sizes by it.  A scale of 1
    means the arrays are the full workload.
    """

    r: DistributedRelation
    s: DistributedRelation
    logical_scale: int = 1

    def __post_init__(self) -> None:
        if self.logical_scale < 1:
            raise ValueError("logical_scale must be >= 1")
        if set(self.r.gpu_ids) != set(self.s.gpu_ids):
            raise ValueError("R and S must live on the same GPU set")

    @property
    def gpu_ids(self) -> tuple[int, ...]:
        return self.r.gpu_ids

    @property
    def real_tuples(self) -> int:
        return self.r.num_tuples + self.s.num_tuples

    @property
    def logical_tuples(self) -> int:
        return self.real_tuples * self.logical_scale

    def logical_tuples_on(self, gpu_id: int) -> int:
        return (
            self.r.tuples_on(gpu_id) + self.s.tuples_on(gpu_id)
        ) * self.logical_scale
