"""Phase 3: local recursive partitioning (paper §3.2).

After distribution, each GPU refines its partitions until at least one
side of every co-partition fits in GPU shared memory.  MG-Join uses the
histogram-*free* bucket-chaining partitioner of Sioulas et al. here
(Rationale 4) precisely because needing no histogram lets the kernel
start on remote packets the moment they arrive.

Functionally the refinement is radix: after ``k`` local passes with
fan-out ``F`` on top of ``P`` global partitions, a tuple's bucket is the
low ``log2(P) + k·log2(F)`` bits of its key.  The number of passes is
what the cost model charges for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.relation import GpuShard


def passes_needed(partition_tuples: int, fanout: int, target_tuples: int) -> int:
    """Local passes required to shrink one partition below target.

    ``partition_tuples`` should be the *smaller* co-partition side: the
    probe only needs one side resident in shared memory.
    """
    if fanout < 2:
        raise ValueError("fanout must be >= 2")
    if target_tuples < 1:
        raise ValueError("target_tuples must be positive")
    if partition_tuples <= target_tuples:
        return 0
    # Each pass divides the partition by the fan-out (uniform radix).
    ratio = partition_tuples / target_tuples
    return max(1, math.ceil(math.log(ratio, fanout)))


@dataclass
class LocalPartitions:
    """The refined co-partition buckets of one GPU.

    ``bucket_of`` maps each tuple to its final bucket id; ``order``
    groups tuples bucket-by-bucket (``boundaries[i]:boundaries[i+1]``
    slices bucket ``bucket_ids[i]`` out of the reordered arrays).
    """

    shard: GpuShard
    bucket_bits: int
    order: np.ndarray
    bucket_ids: np.ndarray
    boundaries: np.ndarray

    @property
    def num_buckets(self) -> int:
        return len(self.bucket_ids)

    def bucket(self, index: int) -> GpuShard:
        start, end = self.boundaries[index], self.boundaries[index + 1]
        rows = self.order[start:end]
        return GpuShard(self.shard.keys[rows], self.shard.ids[rows])

    def max_bucket_tuples(self) -> int:
        if self.num_buckets == 0:
            return 0
        return int(np.diff(self.boundaries).max())


def refine(shard: GpuShard, global_bits: int, passes: int, fanout: int) -> LocalPartitions:
    """Bucket a shard by ``global_bits + passes*log2(fanout)`` key bits."""
    if fanout & (fanout - 1):
        raise ValueError("fanout must be a power of two")
    bucket_bits = global_bits + passes * int(math.log2(fanout))
    bucket_bits = min(bucket_bits, 32)
    mask = np.uint32((1 << bucket_bits) - 1) if bucket_bits < 32 else np.uint32(0xFFFFFFFF)
    buckets = (shard.keys & mask).astype(np.int64)
    order = np.argsort(buckets, kind="stable")
    sorted_buckets = buckets[order]
    bucket_ids, starts = np.unique(sorted_buckets, return_index=True)
    boundaries = np.append(starts, len(sorted_buckets))
    return LocalPartitions(
        shard=shard,
        bucket_bits=bucket_bits,
        order=order,
        bucket_ids=bucket_ids,
        boundaries=boundaries,
    )


def plan_local_passes(
    r_partition_logical: np.ndarray,
    s_partition_logical: np.ndarray,
    fanout: int,
    target_tuples: int,
) -> int:
    """Passes a GPU needs for its worst assigned partition.

    The paper refines until *one* side of each co-partition fits in
    shared memory, so the smaller side of each partition drives the
    pass count ("unless both relations are heavily skewed" — a single
    gigantic key cannot be split by more radix bits, which the cap in
    :func:`passes_needed` reflects by bounding work, not looping
    forever).
    """
    if r_partition_logical.shape != s_partition_logical.shape:
        raise ValueError("histogram shapes differ")
    smaller = np.minimum(r_partition_logical, s_partition_logical)
    if len(smaller) == 0:
        return 0
    worst = int(smaller.max())
    return passes_needed(worst, fanout, target_tuples)
