"""Cross-GPU traffic compression (paper §5.1).

Two schemes combine to the paper's observed 1.3x-2x ratios:

1. **Radix-prefix elision for keys.**  Global partitioning groups
   tuples by the low ``n = log2(P)`` bits of the key, so those bits are
   implied by the partition a tuple travels in and are not transmitted.
   The remaining ``32 - n`` bits are sent byte-aligned.

2. **Delta + null suppression for tuple ids.**  Ids are compressed in
   8 KB blocks: each block subtracts its minimum (delta against the
   block min) and then drops leading zero bits (null suppression),
   packing values at the block's widest surviving bit width.

Both are implemented for real: :func:`compress_ids` /
:func:`decompress_ids` round-trip numpy arrays bit-exactly, and the
:class:`CompressionModel` measures achieved ratios on the actual data
to size the simulated flows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_BITS_HEADER_BYTES = 1 + 4  # per block: bit width byte + uint32 block min
_BLOCK_COUNT_BYTES = 4


def _required_bits(values: np.ndarray) -> int:
    """Bits needed for the largest value (>= 1 so empty deltas survive)."""
    if len(values) == 0:
        return 1
    peak = int(values.max())
    return max(1, peak.bit_length())


def compress_ids(ids: np.ndarray, block_bytes: int = 8192) -> bytes:
    """Delta + null-suppression encode a uint32 id column."""
    if ids.dtype != np.uint32:
        ids = ids.astype(np.uint32)
    if block_bytes < 8:
        raise ValueError("block_bytes too small")
    block_len = max(1, block_bytes // 4)
    chunks = [
        ids[start : start + block_len] for start in range(0, len(ids), block_len)
    ]
    out = [np.uint32(len(chunks)).tobytes()]
    for chunk in chunks:
        base = np.uint32(chunk.min()) if len(chunk) else np.uint32(0)
        deltas = (chunk - base).astype(np.uint32)
        bits = _required_bits(deltas)
        out.append(bytes([bits]))
        out.append(base.tobytes())
        out.append(np.uint32(len(chunk)).tobytes())
        out.append(_pack_bits(deltas, bits))
    return b"".join(out)


def decompress_ids(payload: bytes) -> np.ndarray:
    """Invert :func:`compress_ids` bit-exactly."""
    view = memoryview(payload)
    num_blocks = int(np.frombuffer(view[:4], dtype=np.uint32)[0])
    offset = 4
    blocks: list[np.ndarray] = []
    for _ in range(num_blocks):
        bits = view[offset]
        base = np.frombuffer(view[offset + 1 : offset + 5], dtype=np.uint32)[0]
        count = int(
            np.frombuffer(view[offset + 5 : offset + 9], dtype=np.uint32)[0]
        )
        offset += 9
        packed_bytes = (count * bits + 7) // 8
        deltas = _unpack_bits(view[offset : offset + packed_bytes], bits, count)
        offset += packed_bytes
        blocks.append((deltas + base).astype(np.uint32))
    if not blocks:
        return np.empty(0, dtype=np.uint32)
    return np.concatenate(blocks)


def _pack_bits(values: np.ndarray, bits: int) -> bytes:
    """Pack each value into ``bits`` bits, little-endian bit order."""
    if len(values) == 0:
        return b""
    as_bits = (
        (values[:, None] >> np.arange(bits, dtype=np.uint32)) & np.uint32(1)
    ).astype(np.uint8)
    return np.packbits(as_bits.reshape(-1), bitorder="little").tobytes()


def _unpack_bits(payload: memoryview, bits: int, count: int) -> np.ndarray:
    if count == 0:
        return np.empty(0, dtype=np.uint32)
    raw = np.unpackbits(
        np.frombuffer(payload, dtype=np.uint8), bitorder="little"
    )[: count * bits]
    as_bits = raw.reshape(count, bits).astype(np.uint32)
    return (as_bits << np.arange(bits, dtype=np.uint32)).sum(
        axis=1, dtype=np.uint32
    )


@dataclass(frozen=True)
class CompressionModel:
    """Byte accounting for compressed cross-GPU flows.

    ``key_bits_elided`` is ``log2(P)`` — the radix prefix implied by the
    partition id.  The id ratio is measured on real data once per run
    (ids are near-sequential inside partitions, so deltas are small).
    """

    enabled: bool
    key_bits_elided: int
    id_bytes_per_tuple: float
    key_bytes: int = 4
    id_bytes: int = 4

    @property
    def key_bytes_per_tuple(self) -> float:
        if not self.enabled:
            return float(self.key_bytes)
        remaining_bits = max(0, self.key_bytes * 8 - self.key_bits_elided)
        return remaining_bits / 8.0

    @property
    def bytes_per_tuple(self) -> float:
        if not self.enabled:
            return float(self.key_bytes + self.id_bytes)
        return self.key_bytes_per_tuple + self.id_bytes_per_tuple

    @property
    def ratio(self) -> float:
        """Uncompressed bytes / compressed bytes (paper: 1.3x-2x)."""
        return (self.key_bytes + self.id_bytes) / max(self.bytes_per_tuple, 1e-9)

    def flow_bytes(self, num_tuples: float) -> int:
        return int(round(num_tuples * self.bytes_per_tuple))


def measure_id_compression(
    sample_ids: np.ndarray, block_bytes: int = 8192
) -> float:
    """Achieved id bytes/tuple of the block codec on real data."""
    if len(sample_ids) == 0:
        return 4.0
    compressed = compress_ids(sample_ids, block_bytes)
    overhead_free = len(compressed) - _BLOCK_COUNT_BYTES
    return max(0.25, overhead_free / len(sample_ids))


def build_compression_model(
    enabled: bool,
    num_partitions: int,
    sample_ids: np.ndarray,
    block_bytes: int = 8192,
) -> CompressionModel:
    """Measure the codec on a data sample and build the byte model."""
    key_bits = int(np.log2(num_partitions)) if num_partitions > 1 else 0
    id_bytes = measure_id_compression(sample_ids, block_bytes) if enabled else 4.0
    return CompressionModel(
        enabled=enabled,
        key_bits_elided=key_bits,
        id_bytes_per_tuple=id_bytes,
    )
