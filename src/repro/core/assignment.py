"""Phase 2a: network-optimal partition assignment (paper §3.2, step 2).

MG-Join adapts the migration / selective-broadcast optimizer of Track
Join [Polychroniou et al.]: for every radix partition it compares

* **migrating** both relations' tuples to the single cheapest GPU, and
* **selectively broadcasting** one relation's tuples to the GPUs that
  already hold the other relation's tuples (keeping those in place),

and picks whichever moves the fewest byte-seconds over the fabric.  The
per-tuple move cost between two GPUs is the cost over the *lowest
transmission-cost route* assuming no congestion — multi-hop routes
count, which is one of MG-Join's modifications over Track Join.

Broadcasting wins exactly where it should: heavy-hitter partitions
(e.g. single-value skew) where one relation's partition is enormous and
the other's is tiny, so skew is absorbed without moving the giant side.

A second modification is load balancing: every tuple assigned to a GPU
must later be locally partitioned and probed there, so the optimizer
minimizes *move cost + downstream processing cost* — placing the
largest partitions first onto the least-loaded of the cheap owners.
This is how the histogram-driven design "takes care of data skew ...
early in execution", and it also keeps asymmetric configurations (e.g.
7 of the DGX-1's 8 GPUs) from piling work onto the best-connected GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.histogram import HistogramSet
from repro.topology.machine import MachineTopology
from repro.topology.routes import RouteEnumerator, route_min_bandwidth

#: Marker values for PartitionAssignment.broadcast_side.
NO_BROADCAST = 0
BROADCAST_R = 1
BROADCAST_S = 2


@lru_cache(maxsize=None)
def pairwise_tuple_cost(
    machine: MachineTopology,
    gpu_ids: tuple[int, ...],
    tuple_bytes: int = 8,
    max_intermediates: int = 3,
) -> np.ndarray:
    """Seconds to move one tuple between each GPU pair, no congestion.

    ``cost[i, j]`` indexes positions in the sorted ``gpu_ids`` tuple.
    The diagonal is zero.  The cost is the tuple size divided by the
    best achievable bottleneck bandwidth over any candidate route.
    """
    ids = tuple(sorted(gpu_ids))
    enumerator = RouteEnumerator(machine, allowed_gpus=ids, max_intermediates=max_intermediates)
    size = len(ids)
    cost = np.zeros((size, size), dtype=np.float64)
    for i, src in enumerate(ids):
        for j, dst in enumerate(ids):
            if src == dst:
                continue
            best_bw = max(
                route_min_bandwidth(machine, route)
                for route in enumerator.routes(src, dst)
            )
            cost[i, j] = tuple_bytes / best_bw
    return cost


@dataclass
class PartitionAssignment:
    """The decided placement of every radix partition.

    Attributes:
        gpu_ids: Participating GPUs (sorted); positions index them.
        owners: For each partition, the tuple of owner *positions*.
            Singleton for migrated partitions, the holder set of the
            kept-in-place relation for broadcast partitions.
        broadcast_side: Per partition NO_BROADCAST / BROADCAST_R /
            BROADCAST_S.
        move_cost: Estimated total move cost (seconds·tuples).
    """

    gpu_ids: tuple[int, ...]
    owners: list[tuple[int, ...]]
    broadcast_side: np.ndarray
    move_cost: float

    @property
    def num_partitions(self) -> int:
        return len(self.owners)

    @property
    def num_broadcast(self) -> int:
        return int(np.count_nonzero(self.broadcast_side))

    def owner_gpus(self, partition: int) -> tuple[int, ...]:
        """Owner GPU ids (not positions) of one partition."""
        return tuple(self.gpu_ids[pos] for pos in self.owners[partition])

    def single_owner_map(self) -> np.ndarray:
        """Per-partition owner position for non-broadcast partitions.

        Broadcast partitions get -1.
        """
        owner_map = np.full(self.num_partitions, -1, dtype=np.int64)
        for partition, owners in enumerate(self.owners):
            if self.broadcast_side[partition] == NO_BROADCAST:
                owner_map[partition] = owners[0]
        return owner_map


#: Downstream processing cost of one tuple on its owner GPU: two HBM
#: touches per local-partitioning pass at the calibrated partition
#: efficiency (~1.1e-10 s/tuple on a V100).  Comparable in magnitude to
#: per-tuple move costs, which is exactly why balance matters.
DEFAULT_PROCESS_COST_PER_TUPLE = 16 / (0.16 * 900e9)


def assign_partitions(
    histograms: HistogramSet,
    machine: MachineTopology,
    tuple_bytes: int = 8,
    process_cost_per_tuple: float = DEFAULT_PROCESS_COST_PER_TUPLE,
) -> PartitionAssignment:
    """Run the migration / selective-broadcast optimizer."""
    gpu_ids = histograms.gpu_ids
    cost = pairwise_tuple_cost(machine, gpu_ids, tuple_bytes)
    r_counts, s_counts = histograms.stacked()  # (G, P)
    num_gpus, num_partitions = r_counts.shape
    both = r_counts + s_counts

    # Cost of migrating everything in partition p to owner o (O x P):
    migrate_cost = cost.T @ both

    # Cost of broadcasting one relation to the holders of the other:
    # sum_{g,h} X[g,p] * cost[g,h] * holder(other)[h,p].
    s_holders = (s_counts > 0).astype(np.float64)
    r_holders = (r_counts > 0).astype(np.float64)
    broadcast_r_cost = np.einsum("gp,gh,hp->p", r_counts, cost, s_holders)
    broadcast_s_cost = np.einsum("gp,gh,hp->p", s_counts, cost, r_holders)
    # A broadcast is pointless when the other side has <= 1 holder
    # (that is just a migration); force the comparison to pick migrate.
    multi_holder_s = s_holders.sum(axis=0) > 1
    multi_holder_r = r_holders.sum(axis=0) > 1
    broadcast_r_cost = np.where(multi_holder_s, broadcast_r_cost, np.inf)
    broadcast_s_cost = np.where(multi_holder_r, broadcast_s_cost, np.inf)

    best_migrate_cost = migrate_cost.min(axis=0)
    owners: list[tuple[int, ...]] = [()] * num_partitions
    broadcast_side = np.zeros(num_partitions, dtype=np.int8)
    total_cost = 0.0
    assigned_load = np.zeros(num_gpus, dtype=np.float64)

    partition_sizes = both.sum(axis=0)
    for partition in np.argsort(-partition_sizes):
        p = int(partition)
        options = (
            (best_migrate_cost[p], NO_BROADCAST),
            (broadcast_r_cost[p], BROADCAST_R),
            (broadcast_s_cost[p], BROADCAST_S),
        )
        chosen_cost, chosen_kind = min(options, key=lambda item: item[0])
        if chosen_kind == BROADCAST_R:
            owner_positions = tuple(np.nonzero(s_counts[:, p] > 0)[0].tolist())
            per_owner = r_counts[:, p].sum() + s_counts[:, p] / max(
                len(owner_positions), 1
            )
            for pos in owner_positions:
                assigned_load[pos] += float(per_owner[pos])
        elif chosen_kind == BROADCAST_S:
            owner_positions = tuple(np.nonzero(r_counts[:, p] > 0)[0].tolist())
            per_owner = s_counts[:, p].sum() + r_counts[:, p] / max(
                len(owner_positions), 1
            )
            for pos in owner_positions:
                assigned_load[pos] += float(per_owner[pos])
        else:
            owner = _pick_owner(
                migrate_cost[:, p],
                assigned_load,
                float(partition_sizes[p]),
                process_cost_per_tuple,
            )
            owner_positions = (owner,)
            assigned_load[owner] += float(partition_sizes[p])
            chosen_cost = float(migrate_cost[owner, p])
        owners[p] = owner_positions
        broadcast_side[p] = chosen_kind
        total_cost += float(chosen_cost)

    return PartitionAssignment(
        gpu_ids=gpu_ids,
        owners=owners,
        broadcast_side=broadcast_side,
        move_cost=total_cost,
    )


def _pick_owner(
    partition_migrate_cost: np.ndarray,
    assigned_load: np.ndarray,
    partition_size: float,
    process_cost_per_tuple: float,
) -> int:
    """Minimize move cost + the owner's accumulated processing cost.

    The second term models the owner GPU having to locally partition
    and probe everything already assigned to it, so a marginally
    cheaper link never justifies overloading one GPU.
    """
    total = partition_migrate_cost + process_cost_per_tuple * (
        assigned_load + partition_size
    )
    return int(np.argmin(total))


def modulo_assignment(
    histograms: HistogramSet,
) -> PartitionAssignment:
    """Partition p -> GPU (p mod G): what DPRJ-style joins do.

    Ignores data placement entirely, so (G-1)/G of every partition's
    tuples move even when the data already sits on one GPU.
    """
    gpu_ids = histograms.gpu_ids
    num_gpus = len(gpu_ids)
    num_partitions = histograms.num_partitions
    owners = [(p % num_gpus,) for p in range(num_partitions)]
    return PartitionAssignment(
        gpu_ids=gpu_ids,
        owners=owners,
        broadcast_side=np.zeros(num_partitions, dtype=np.int8),
        move_cost=float("nan"),
    )
