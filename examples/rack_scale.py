#!/usr/bin/env python3
"""Rack-scale MG-Join: two DGX-1s over InfiniBand (paper §7).

The paper closes by naming RDMA scale-out as future work.  Because
everything in this repository is topology-driven, MG-Join runs
unchanged on a two-node machine — this example quantifies how the
inter-node pipe width decides whether the join stays compute-bound.

Usage::

    python examples/rack_scale.py
"""

from repro import MGJoin, WorkloadSpec
from repro.topology import multi_node_dgx1
from repro.workloads import generate_workload


def main() -> None:
    for ib_lanes in (1, 2, 4, 8):
        machine = multi_node_dgx1(2, ib_lanes=ib_lanes)
        workload = generate_workload(
            WorkloadSpec(
                gpu_ids=machine.gpu_ids,
                logical_tuples_per_gpu=512 * 1024 * 1024,
                real_tuples_per_gpu=1 << 13,
            )
        )
        result = MGJoin(machine).run(workload)
        bisection = machine.bisection_bandwidth() / 1e9
        print(
            f"IB lanes={ib_lanes} ({ib_lanes * 12.5:5.1f} GB/s, "
            f"bisection {bisection:5.1f} GB/s): "
            f"{result.throughput / 1e9:5.1f} B tuples/s, "
            f"{result.breakdown.distribution_share * 100:4.1f}% exposed transfer, "
            f"matches ok={result.matches_logical > 0}"
        )
    print()
    print("One EDR lane leaves the 16-GPU join communication-bound; four")
    print("lanes hide the inter-node shuffle under compute again - the")
    print("quantitative version of the paper's future-work argument.")


if __name__ == "__main__":
    main()
