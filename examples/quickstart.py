#!/usr/bin/env python3
"""Quickstart: join two distributed relations with MG-Join.

Runs the paper's headline workload — |R| = |S| = 512M logical tuples
per GPU, 8-byte tuples, 100% selectivity — on a simulated DGX-1 with 4
GPUs, and prints the phase breakdown and throughput.

Usage::

    python examples/quickstart.py [num_gpus]
"""

import sys

from repro import MGJoin, WorkloadSpec, dgx1_topology, generate_workload


def main() -> None:
    num_gpus = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    machine = dgx1_topology()
    if num_gpus < 1 or num_gpus > machine.num_gpus:
        raise SystemExit(f"num_gpus must be 1..{machine.num_gpus}")

    # 512M logical tuples per relation per GPU, materialized as 64K
    # real tuples each (every real tuple stands for 8192 logical ones).
    spec = WorkloadSpec(
        gpu_ids=tuple(range(num_gpus)),
        logical_tuples_per_gpu=512 * 1024 * 1024,
        real_tuples_per_gpu=1 << 16,
    )
    workload = generate_workload(spec)

    join = MGJoin(machine)
    result = join.run(workload)

    print(f"machine             : {machine.name} ({num_gpus} GPUs)")
    print(f"input               : {workload.logical_tuples / 2**30:.1f} Gi tuples "
          f"(logical), {workload.real_tuples:,} real")
    print(f"matches             : {result.matches_logical:,} (logical)")
    print(f"total time          : {result.total_time * 1e3:.1f} ms")
    print(f"throughput          : {result.throughput / 1e9:.2f} B tuples/s")
    print(f"compression ratio   : {result.compression_ratio:.2f}x")
    print("phase breakdown:")
    for phase, seconds in result.breakdown.as_dict().items():
        share = seconds / result.total_time * 100
        print(f"  {phase:22s} {seconds * 1e3:8.2f} ms  ({share:4.1f}%)")
    if result.shuffle_report is not None:
        report = result.shuffle_report
        print(f"distribution step   : {report.elapsed * 1e3:.1f} ms, "
              f"{report.throughput / 1e9:.0f} GB/s, "
              f"{report.average_hops:.2f} hops/packet, "
              f"{report.bisection_utilization * 100:.0f}% bisection util")


if __name__ == "__main__":
    main()
