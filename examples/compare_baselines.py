#!/usr/bin/env python3
"""Scalability shoot-out: MG-Join vs DPRJ vs UMJ (Figure 11 in small).

Sweeps the GPU count on the simulated DGX-1 with the paper's per-GPU
input (512M tuples per relation) and prints the throughput and
data-distribution share of each algorithm — the story of Figures 11
and 12 in one table.

Usage::

    python examples/compare_baselines.py
"""

from repro import DPRJJoin, MGJoin, UMJJoin, WorkloadSpec, dgx1_topology
from repro.workloads import generate_workload


def main() -> None:
    machine = dgx1_topology()
    algorithms = (MGJoin(machine), DPRJJoin(machine), UMJJoin(machine))

    header = f"{'GPUs':>4} | " + " | ".join(
        f"{algo.algorithm:>22}" for algo in algorithms
    )
    print(header)
    print("-" * len(header))
    baselines = {}
    for num_gpus in (1, 2, 4, 8):
        workload = generate_workload(
            WorkloadSpec(
                gpu_ids=tuple(range(num_gpus)),
                logical_tuples_per_gpu=512 * 1024 * 1024,
                real_tuples_per_gpu=1 << 15,
            )
        )
        cells = []
        for algo in algorithms:
            result = algo.run(workload)
            if num_gpus == 1:
                baselines[algo.algorithm] = result.throughput
            speedup = result.throughput / baselines[algo.algorithm]
            cells.append(
                f"{result.throughput / 1e9:5.1f} B/s "
                f"({speedup:4.1f}x, {result.breakdown.distribution_share * 100:4.1f}% xfer)"
            )
        print(f"{num_gpus:>4} | " + " | ".join(f"{c:>22}" for c in cells))

    print()
    print("Reading: MG-Join scales near-linearly with a tiny exposed")
    print("transfer share; DPRJ is transfer-bound at 8 GPUs; UMJ's page")
    print("faults make 8 GPUs slower than one (paper §5.3).")


if __name__ == "__main__":
    main()
