#!/usr/bin/env python3
"""TPC-H analytics on MG-Join (the Figure 14 scenario).

Generates a TPC-H database, scales it logically to SF 250, and runs
the paper's six queries on all four engines — MG-Join, DPRJ, OmniSci
GPU (shared-nothing) and OmniSci CPU — printing times, NA outcomes and
one decoded answer.

Usage::

    python examples/tpch_analytics.py [real_scale_factor]
"""

import sys

from repro.relational import (
    DPRJQueryEngine,
    MGJoinQueryEngine,
    OmnisciCpuEngine,
    OmnisciGpuEngine,
)
from repro.relational.tpch import generate_tpch, run_query
from repro.relational.tpch.dates import days_to_date
from repro.topology import dgx1_topology


def main() -> None:
    real_sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    machine = dgx1_topology()
    database = generate_tpch(scale_factor=real_sf)
    scale = 250.0 / real_sf
    print(f"TPC-H generated at SF {real_sf} "
          f"({database.lineitem.num_rows:,} lineitems), "
          f"costed at SF 250\n")

    engines = (
        MGJoinQueryEngine(machine, logical_scale=scale),
        DPRJQueryEngine(machine, logical_scale=scale),
        OmnisciGpuEngine(machine, logical_scale=scale),
        OmnisciCpuEngine(machine, logical_scale=scale),
    )
    names = [engine.name for engine in engines]
    print(f"{'query':>6} | " + " | ".join(f"{n:>12}" for n in names))
    print("-" * (9 + 15 * len(names)))
    for query in ("q3", "q5", "q10", "q12", "q14", "q19"):
        cells = []
        for engine in engines:
            outcome = run_query(query, engine, database)
            cells.append("NA" if outcome.is_na else f"{outcome.seconds:9.2f} s")
        print(f"{query:>6} | " + " | ".join(f"{c:>12}" for c in cells))

    # Show a real answer: Q3's top shipping-priority orders.
    outcome = run_query("q3", engines[0], database)
    table = outcome.table
    print("\nQ3 top orders (MG-Join engine):")
    for row in range(min(5, table.num_rows)):
        date = days_to_date(int(table["o_orderdate"][row]))
        print(f"  order {int(table['l_orderkey'][row]):>9}  "
              f"revenue {table['revenue'][row]:14,.2f}  "
              f"orderdate {date}")


if __name__ == "__main__":
    main()
