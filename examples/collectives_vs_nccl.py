#!/usr/bin/env python3
"""Collectives: static (NCCL-style) vs adaptive routing.

The paper's related work (§6) claims frameworks like NCCL, which route
statically over direct links, are "highly inefficient on modern
multi-GPU hardware".  This example measures that claim: the classic
collective schedules executed over direct routes vs MG-Join's adaptive
multi-hop routing, on the full 8-GPU DGX-1.

Usage::

    python examples/collectives_vs_nccl.py
"""

from repro import AdaptiveArmPolicy, DirectPolicy, dgx1_topology
from repro.collectives import all_gather, all_reduce, all_to_all, broadcast

MB = 1024 * 1024


def main() -> None:
    machine = dgx1_topology()
    gpu_ids = machine.gpu_ids
    payload = 256 * MB  # per-GPU shard

    operations = (
        ("broadcast", broadcast),
        ("all-gather", all_gather),
        ("all-reduce", all_reduce),
        ("all-to-all", all_to_all),
    )
    print(f"{'collective':>12} | {'direct':>10} | {'adaptive':>10} | gain")
    print("-" * 50)
    for name, operation in operations:
        direct = operation(machine, gpu_ids, payload, DirectPolicy())
        adaptive = operation(machine, gpu_ids, payload, AdaptiveArmPolicy())
        print(
            f"{name:>12} | {direct.elapsed * 1e3:7.1f} ms |"
            f" {adaptive.elapsed * 1e3:7.1f} ms |"
            f" {direct.elapsed / adaptive.elapsed:4.2f}x"
        )
    print()
    print("Every schedule gains 2-3x: even the 'NVLink-friendly' ring")
    print("0->1->...->7->0 contains staged hops (e.g. 3->4 has no NVLink")
    print("on the DGX-1), and one slow hop paces the whole ring round.")


if __name__ == "__main__":
    main()
