#!/usr/bin/env python3
"""Bring your own machine: MG-Join on a custom topology.

Builds a hypothetical 6-GPU server — two quads... actually two triads
per socket, NVLink rings within each triad, a single NVLink bridge
between them — and shows how routing policy choices play out on it.
This is the workflow for studying a machine NVIDIA hasn't built yet.

Usage::

    python examples/custom_topology.py
"""

from repro import (
    AdaptiveArmPolicy,
    DirectPolicy,
    FlowMatrix,
    MGJoin,
    ShuffleSimulator,
    TopologyBuilder,
    WorkloadSpec,
)
from repro.workloads import generate_workload


def build_machine():
    """Two sockets, three GPUs each; NVLink ring per triad and one
    double-link bridge (GPU 0 <-> GPU 3) between the sockets."""
    builder = TopologyBuilder("twin-triad")
    builder.add_gpus(6)
    builder.add_switch(0, socket=0)
    builder.add_switch(1, socket=1)
    for gpu_id in (0, 1, 2):
        builder.attach_gpu_to_switch(gpu_id, 0)
    for gpu_id in (3, 4, 5):
        builder.attach_gpu_to_switch(gpu_id, 1)
    builder.add_qpi(0, 1)
    for a, b in ((0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)):
        builder.add_nvlink(a, b)
    builder.add_nvlink(0, 3, lanes=2)  # the single cross-socket bridge
    return builder.build()


def main() -> None:
    machine = build_machine()
    print(f"machine: {machine.name}, {machine.num_gpus} GPUs, "
          f"{len(machine.links)} directed links")
    print(f"bisection bandwidth: "
          f"{machine.bisection_bandwidth() / 1e9:.1f} GB/s per direction")
    print()

    # The cross-socket bridge is the choke point; watch routing fight it.
    flows = FlowMatrix.all_to_all(machine.gpu_ids, 512 * 1024 * 1024)
    simulator = ShuffleSimulator(machine)
    for policy in (DirectPolicy(), AdaptiveArmPolicy()):
        report = simulator.run(flows, policy)
        print(f"{policy.name:>8}: {report.elapsed * 1e3:7.1f} ms, "
              f"{report.throughput / 1e9:6.1f} GB/s, "
              f"{report.average_hops:.2f} hops/packet, "
              f"{report.bisection_utilization * 100:4.0f}% bisection util")
    print()

    workload = generate_workload(
        WorkloadSpec(
            gpu_ids=machine.gpu_ids,
            logical_tuples_per_gpu=256 * 1024 * 1024,
            real_tuples_per_gpu=1 << 14,
        )
    )
    result = MGJoin(machine).run(workload)
    print(f"MG-Join on {machine.name}: "
          f"{result.throughput / 1e9:.1f} B tuples/s, "
          f"{result.matches_logical:,} matches")


if __name__ == "__main__":
    main()
