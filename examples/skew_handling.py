#!/usr/bin/env python3
"""Skew handling: heavy hitters and skewed placement.

Demonstrates two MG-Join mechanisms from the paper:

1. **Selective broadcast** (§3.2): with Zipf-distributed *key values*
   the heaviest key dominates whole radix partitions; the assignment
   optimizer broadcasts the small relation's tuples instead of
   migrating the giant partition.
2. **Adaptive routing under placement skew** (Figure 9): with
   Zipf-distributed *placement* one GPU sources most of the traffic;
   adaptive multi-hop routing degrades far less than static policies.

Usage::

    python examples/skew_handling.py
"""

from repro import (
    AdaptiveArmPolicy,
    HopCountPolicy,
    MGJoin,
    ShuffleSimulator,
    WorkloadSpec,
    dgx1_topology,
)
from repro.bench.figures import _assignment_flows
from repro.workloads import generate_workload


def heavy_hitters() -> None:
    machine = dgx1_topology()
    print("=== heavy-hitter keys (Zipf 1.2 over key values) ===")
    for key_zipf in (0.0, 1.2):
        workload = generate_workload(
            WorkloadSpec(
                gpu_ids=(0, 1, 2, 3),
                logical_tuples_per_gpu=512 * 1024 * 1024,
                real_tuples_per_gpu=1 << 14,
                key_zipf=key_zipf,
                seed=11,
            )
        )
        result = MGJoin(machine).run(workload)
        print(
            f"  key_zipf={key_zipf:3.1f}: {result.assignment_broadcasts:4d} "
            f"broadcast partitions, {result.matches_logical:,} matches, "
            f"{result.throughput / 1e9:5.1f} B tuples/s"
        )
    print()


def placement_skew() -> None:
    machine = dgx1_topology()
    gpu_ids = tuple(range(8))
    print("=== placement skew: adaptive vs hop-count routing ===")
    print(f"{'zipf':>5} | {'adaptive':>12} | {'hop-count':>12} | gain")
    for zipf in (0.0, 0.5, 1.0):
        flows = _assignment_flows(gpu_ids, placement_zipf=zipf)
        simulator = ShuffleSimulator(machine, gpu_ids)
        adaptive = simulator.run(flows, AdaptiveArmPolicy())
        static = simulator.run(flows, HopCountPolicy())
        print(
            f"{zipf:5.2f} | {adaptive.throughput / 1e9:9.0f} GB/s |"
            f" {static.throughput / 1e9:9.0f} GB/s |"
            f" {adaptive.throughput / static.throughput:4.2f}x"
        )


if __name__ == "__main__":
    heavy_hitters()
    placement_skew()
