#!/usr/bin/env python3
"""Congestion forensics: watch routing policies fight over links.

Runs the same 8-GPU distribution step under direct and adaptive routing
with tracing enabled, then prints a terminal Gantt chart of the busiest
links.  Under direct routing the QPI link is a wall of '#' while NVLink
links sit idle; the adaptive policy's chart is short and uniformly
dense — the Figure 8 story, visualized.

Usage::

    python examples/trace_congestion.py
"""

from repro import (
    AdaptiveArmPolicy,
    DirectPolicy,
    FlowMatrix,
    ShuffleSimulator,
    dgx1_topology,
)
from repro.sim import Tracer


def main() -> None:
    machine = dgx1_topology()
    gpu_ids = machine.gpu_ids
    flows = FlowMatrix.all_to_all(gpu_ids, 512 * 1024 * 1024)

    for policy in (DirectPolicy(), AdaptiveArmPolicy()):
        tracer = Tracer()
        report = ShuffleSimulator(machine, gpu_ids, tracer=tracer).run(
            flows, policy
        )
        print(f"=== {policy.name}: {report.elapsed * 1e3:.1f} ms, "
              f"{report.throughput / 1e9:.0f} GB/s, "
              f"{report.bisection_utilization * 100:.0f}% bisection ===")
        print(tracer.ascii_gantt(width=64, top=10))


if __name__ == "__main__":
    main()
