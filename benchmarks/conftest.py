"""Benchmark-suite configuration.

Every driver runs one figure generator exactly once (these are
simulations measured in simulated seconds; wall-clock repetition adds
nothing), prints the regenerated table, persists it under
``bench_results/`` and asserts the paper's qualitative claims.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureResult
from repro.bench.reporting import save_figure_result


@pytest.fixture
def run_figure(benchmark):
    """Run a figure generator under pytest-benchmark and report it."""

    def runner(figure_fn, *args, **kwargs) -> FigureResult:
        result = benchmark.pedantic(
            figure_fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        print()
        print(result.to_markdown())
        save_figure_result(result)
        return result

    return runner
