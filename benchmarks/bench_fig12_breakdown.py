"""Figure 12: execution-time breakdown, DPRJ vs MG-Join.

Paper claims: DPRJ spends up to 72% of its time in data distribution;
MG-Join at most ~35%, and less than 20% at 8 GPUs.  (Our calibrated
simulator overlaps even more aggressively, so MG-Join's exposed share
is in the low single digits — same direction, stronger.)
"""

from repro.bench.figures import fig12_breakdown


def test_fig12_breakdown(run_figure):
    result = run_figure(fig12_breakdown)
    dprj = {
        r["gpus"]: r["distribution_pct"]
        for r in result.series("algorithm", "dprj")
    }
    mgjoin = {
        r["gpus"]: r["distribution_pct"]
        for r in result.series("algorithm", "mg-join")
    }
    # DPRJ is transfer-dominated at scale (paper: 66-72%).
    assert dprj[8] > 45
    assert max(dprj.values()) > 55
    # MG-Join's exposed distribution stays under the paper's bounds.
    assert all(value < 35 for value in mgjoin.values())
    assert mgjoin[8] < 20
    # MG-Join hides far more of the transfer than DPRJ at every count.
    assert all(mgjoin[g] < dprj[g] for g in dprj)
