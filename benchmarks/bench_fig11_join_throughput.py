"""Figure 11: end-to-end join throughput of UMJ / DPRJ / MG-Join.

Paper claims: MG-Join scales near-linearly (7.2x at 8 GPUs), beating
DPRJ by up to 2.5x and UMJ by ~10x; DPRJ manages only ~2.13x from 1 to
8 GPUs; UMJ on 5-8 GPUs is slower than on one.
"""

from repro.bench.figures import fig11_join_throughput


def test_fig11_join_throughput(run_figure):
    result = run_figure(fig11_join_throughput)

    def curve(algorithm):
        return {
            r["gpus"]: r["throughput_btps"]
            for r in result.series("algorithm", algorithm)
        }

    mgjoin, dprj, umj = curve("mg-join"), curve("dprj"), curve("umj")

    # All three coincide on one GPU (no communication involved).
    assert mgjoin[1] == dprj[1] == umj[1]
    # MG-Join scales near-linearly (paper: 7.2x at 8 GPUs).
    assert mgjoin[8] / mgjoin[1] > 6.0
    # DPRJ scales poorly (paper: 2.13x).
    assert dprj[8] / dprj[1] < 4.0
    # UMJ at 8 GPUs is slower than at 1 (paper §5.3).
    assert umj[8] < umj[1]
    # Headline gaps at 8 GPUs (paper: 2.5x over DPRJ, ~10x over UMJ).
    assert mgjoin[8] > 2.0 * dprj[8]
    assert mgjoin[8] > 6.0 * umj[8]
    # MG-Join throughput is monotone in GPU count.
    values = [mgjoin[g] for g in sorted(mgjoin)]
    assert all(b >= a for a, b in zip(values, values[1:]))
