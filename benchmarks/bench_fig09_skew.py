"""Figure 9: routing policies under Zipf placement skew (8 GPUs).

Paper claims: static policies degrade up to 3x as skew grows; adaptive
routing degrades least and delivers the best absolute performance at
every skew level.
"""

from repro.bench.figures import fig09_skew


def test_fig09_skew(run_figure):
    result = run_figure(fig09_skew)

    def series(policy):
        return {
            r["zipf"]: r for r in result.series("policy", policy)
        }

    adaptive = series("mg-join")
    statics = {name: series(name) for name in ("bandwidth", "hop-count", "latency")}

    for zipf in (0.0, 0.25, 0.5, 0.75, 1.0):
        # Adaptive wins at every skew level.
        for name, rows in statics.items():
            assert (
                adaptive[zipf]["throughput_gbps"]
                >= rows[zipf]["throughput_gbps"] * 0.999
            )
    # Adaptive's worst-case degradation beats the competitive statics'
    # (bandwidth is excluded from the *relative* comparison: it starts
    # from such a poor z=0 baseline that its self-normalized curve is
    # flattered — in absolute terms it loses everywhere, asserted above).
    worst_adaptive = min(r["normalized"] for r in adaptive.values())
    for name in ("hop-count", "latency"):
        worst_static = min(r["normalized"] for r in statics[name].values())
        assert worst_adaptive >= worst_static * 0.999
    # Skew hurts the statics noticeably (paper: up to 3x; our balanced
    # partition assignment absorbs part of the placement skew before
    # routing even starts, so the residual degradation is milder).
    assert any(
        min(r["normalized"] for r in rows.values()) < 0.80
        for rows in statics.values()
    )
    # The adaptive-vs-static gap holds at every skew level (paper: the
    # statics lose up to 3x more performance than adaptive).
    for zipf in (0.5, 1.0):
        best_static = max(
            rows[zipf]["throughput_gbps"] for rows in statics.values()
        )
        assert adaptive[zipf]["throughput_gbps"] > 1.2 * best_static
