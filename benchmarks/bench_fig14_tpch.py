"""Figure 14: TPC-H at SF 250 — MG-Join vs DPRJ vs OmniSci CPU/GPU.

Paper claims: OmniSci GPU fails (NA) on Q3/Q5/Q10/Q12 at SF 250 and
runs only Q14/Q19; MG-Join beats OmniSci GPU by up to 4.5x and OmniSci
CPU by ~25x; MG-Join also beats DPRJ on every query.
"""

from repro.bench.figures import fig14_tpch


def test_fig14_tpch(run_figure):
    result = run_figure(fig14_tpch)
    rows = {r["query"]: r for r in result.rows}
    assert set(rows) == {"q3", "q5", "q10", "q12", "q14", "q19"}

    # The paper's NA pattern, exactly.
    for query in ("q3", "q5", "q10", "q12"):
        assert rows[query]["omnisci-gpu"] == "NA"
    for query in ("q14", "q19"):
        assert rows[query]["omnisci-gpu"] != "NA"

    for query, row in rows.items():
        # MG-Join is the fastest engine on every query.
        others = [
            row[name]
            for name in ("dprj", "omnisci-gpu", "omnisci-cpu")
            if row[name] != "NA"
        ]
        assert all(row["mg-join"] <= value for value in others)
        # MG-Join never loses to DPRJ.
        assert row["mg-join"] <= row["dprj"]

    # Headline factors where OmniSci GPU runs (paper: up to 4.5x).
    for query in ("q14", "q19"):
        ratio = rows[query]["omnisci-gpu"] / rows[query]["mg-join"]
        assert 3.0 <= ratio <= 8.0
    # OmniSci CPU is an order of magnitude slower (paper: ~25x).
    for query in rows:
        assert rows[query]["omnisci-cpu"] > 8 * rows[query]["mg-join"]
