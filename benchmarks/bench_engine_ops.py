"""Batch-engine kernel micro-benchmarks (docs/performance.md).

Times the array operations behind the batch event kernel in isolation
— ready-batch extraction, the heap-drain lexsort merge, the link-queue
drain forecast, and a live calendar drain — per available backend.
The row table lands in ``bench_results/engine-ops.json`` and the
suite's self-time in ``bench_run.json`` like every other figure.

Assertions here are *sanity* bounds (the ops complete, scale sanely,
and every backend produced rows), not perf gates: wall-clock per-op
timings on shared CI are too noisy to gate, and the real hot-path
budget is ``perf.self_time_seconds`` in the BENCH baselines.
"""

from repro.bench.engine_ops import SIZES, engine_ops
from repro.sim import kernels


def test_engine_ops_micro_suite(run_figure):
    result = run_figure(engine_ops)

    ops = {row["op"] for row in result.rows}
    assert ops == {
        "ready-batch-extraction",
        "heap-drain-merge",
        "link-queue-drain",
        "engine-calendar-drain",
    }
    backends = {row["backend"] for row in result.rows}
    assert "numpy" in backends
    if kernels.numba_available():
        assert "numba" in backends

    # Every (op, backend) pair covered the full size sweep.
    for op in ops:
        for backend in backends:
            sizes = {
                row["n"]
                for row in result.rows
                if row["op"] == op and row["backend"] == backend
            }
            assert len(sizes) == len(SIZES), (op, backend)

    # Timings are positive and finite (a zero would mean the op was
    # optimized away and the row is meaningless).
    for row in result.rows:
        cost = row.get("ns_per_element", row.get("ns_per_call"))
        assert cost is not None and cost > 0
