"""Ablation studies for MG-Join's design choices (DESIGN.md §5).

These are not paper figures; they probe the knobs the paper fixes by
profiling (packet size 2 MB, batch 8, <=3 relay hops, compression on,
P_max partitions) and confirm each choice earns its keep.
"""

from repro.bench.figures import (
    ablation_compression,
    ablation_dma_engines,
    ablation_histogram_partitions,
    ablation_packet_batch,
    ablation_route_cap,
)


def test_ablation_packet_batch(run_figure):
    result = run_figure(ablation_packet_batch)

    def time_of(packet_kb, batch):
        return [
            r["time_ms"] for r in result.rows
            if r["packet_kb"] == packet_kb and r["batch"] == batch
        ][0]

    # Tiny packets with no batching waste link efficiency.
    assert time_of(256, 1) > time_of(2048, 8)
    # The paper's 2 MB / 8 choice is within 25% of the sweep's best.
    best = min(r["time_ms"] for r in result.rows)
    assert time_of(2048, 8) <= 1.25 * best


def test_ablation_dma_engines(run_figure):
    result = run_figure(ablation_dma_engines)
    times = {r["dma_engines"]: r["time_ms"] for r in result.rows}
    # One engine serializes everything; more engines help up to the
    # NVLink port count.
    assert times[1] > 1.5 * times[6]
    assert times[6] <= times[2]
    # Beyond one engine per port there is little left to gain.
    assert times[8] > 0.9 * times[6]


def test_ablation_route_cap(run_figure):
    result = run_figure(ablation_route_cap)
    times = {r["max_intermediates"]: r["time_ms"] for r in result.rows}
    hops = {r["max_intermediates"]: r["average_hops"] for r in result.rows}
    # No relays = direct routing; allowing relays is a large win.
    assert times[0] > 1.5 * times[2]
    assert hops[0] == 1.0
    # The paper's cap of 3 is within noise of 2 (diminishing returns).
    assert times[3] <= times[1] * 1.1


def test_ablation_compression(run_figure):
    result = run_figure(ablation_compression)
    on = [r for r in result.rows if r["compression"]][0]
    off = [r for r in result.rows if not r["compression"]][0]
    assert on["compression_ratio"] > 1.3
    assert off["compression_ratio"] == 1.0
    # Compression never hurts; with the distribution already hidden
    # under compute its end-to-end gain is modest (the win is headroom).
    assert on["distribution_ms"] <= off["distribution_ms"] * 1.05
    assert on["throughput_btps"] >= off["throughput_btps"] * 0.999


def test_ablation_histogram_partitions(run_figure):
    result = run_figure(ablation_histogram_partitions)
    rows = {r["partitions"]: r for r in result.rows}
    # Fewer global partitions push work into extra local passes
    # (Rationale 3: generate the largest histogram P_max allows).
    assert rows[256]["local_passes"] >= rows[4096]["local_passes"]
    assert rows[4096]["throughput_btps"] >= rows[256]["throughput_btps"]
