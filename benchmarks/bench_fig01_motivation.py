"""Figure 1: the motivation experiment.

UMJ and DPRJ cycles/tuple with transfer-vs-compute breakdown on 1-8
GPUs.  Paper claims: both scale poorly; DPRJ's transfer share reaches
~66%; UMJ on 8 GPUs is slower than on a single GPU.
"""

from repro.bench.figures import fig01_motivation


def test_fig01_motivation(run_figure):
    result = run_figure(fig01_motivation)
    umj = {r["gpus"]: r for r in result.series("algorithm", "umj")}
    dprj = {r["gpus"]: r for r in result.series("algorithm", "dprj")}

    # UMJ degrades monotonically and is far worse at 8 than at 1 GPU.
    assert umj[8]["cycles_per_tuple"] > 3 * umj[1]["cycles_per_tuple"]
    # DPRJ also pays more cycles per tuple at 8 GPUs than at 1.
    assert dprj[8]["cycles_per_tuple"] > 1.5 * dprj[1]["cycles_per_tuple"]
    # DPRJ's transfer share at 8 GPUs is dominant (paper: up to 66%).
    assert dprj[8]["transfer_share"] > 0.45
    # At a single GPU there is no cross-GPU transfer at all.
    assert dprj[1]["transfer_share"] == 0.0
    assert umj[1]["transfer_share"] == 0.0
