"""Figure 10: decentralized ARM vs the centralized MGJ-Baseline.

Paper claims: the centralized router's perfect state buys at most ~3%
better raw transfer, but per-batch global synchronization makes it up
to 1.5x worse overall.
"""

from repro.bench.figures import fig10_centralized


def test_fig10_centralized(run_figure):
    result = run_figure(fig10_centralized)
    at8 = [r for r in result.rows if r["gpus"] == 8][0]
    # Exact state helps raw transfer only marginally (paper: <= ~3%;
    # we allow a slightly wider band for simulator noise).
    assert at8["baseline_transfer_ps"] < at8["mg_join_ps"] * 1.08
    # Synchronization makes the centralized total clearly worse.
    assert at8["baseline_total_ps"] > 1.25 * at8["mg_join_ps"]
    # Sync cost grows with GPU count.
    sync = {r["gpus"]: r["baseline_sync_ps"] for r in result.rows}
    assert sync[8] > sync[2]
