"""Figure 8: bisection-bandwidth utilization of the distribution step.

Paper claims: DPRJ's utilization falls toward 30% as GPUs grow;
MG-Join's rises with GPU count (97% at 8 in the paper) because more
GPUs mean more alternative routes to spread over.
"""

from repro.bench.figures import fig08_utilization


def test_fig08_utilization(run_figure):
    result = run_figure(fig08_utilization)
    dprj = {
        r["gpus"]: r["utilization_pct"]
        for r in result.series("algorithm", "dprj")
    }
    mgjoin = {
        r["gpus"]: r["utilization_pct"]
        for r in result.series("algorithm", "mg-join")
    }
    # DPRJ collapses at scale (paper: "as low as 30%").
    assert dprj[8] < 35
    assert dprj[8] < dprj[4]
    # MG-Join stays high and beats DPRJ decisively at 6-8 GPUs.
    assert mgjoin[8] > 2 * dprj[8]
    assert mgjoin[6] > dprj[6]
    assert mgjoin[8] > 60
