"""Figure 6: multi-hop routing vs direct routing throughput.

Paper claims: equal for few GPUs (direct is already fine); multi-hop
wins by ~2.35x as the GPU count grows and the slow shared PCIe/QPI
paths start carrying direct traffic.
"""

from repro.bench.figures import fig06_multihop


def test_fig06_multihop(run_figure):
    result = run_figure(fig06_multihop)
    direct = {
        r["gpus"]: r["throughput_gbps"]
        for r in result.series("policy", "dprj-direct")
    }
    multihop = {
        r["gpus"]: r["throughput_gbps"]
        for r in result.series("policy", "mg-join")
    }
    # Parity at 2-3 GPUs (all pairs NVLink-adjacent).
    for gpus in (2, 3):
        assert multihop[gpus] == direct[gpus]
    # Strong multi-hop wins once staged pairs appear (paper: 2.35x).
    assert multihop[8] > 2.0 * direct[8]
    assert multihop[6] > 2.0 * direct[6]
    # Multi-hop never loses.
    assert all(multihop[g] >= direct[g] * 0.99 for g in direct)
