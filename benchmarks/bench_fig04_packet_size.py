"""Figure 4: NVLink / PCIe throughput vs packet size.

Paper claims: up to ~20x degradation for tiny packets; saturation
around 12 MB; NVLink strictly faster than PCIe.
"""

from repro.bench.figures import fig04_packet_size


def test_fig04_packet_size(run_figure):
    result = run_figure(fig04_packet_size)
    rows = {r["packet_kb"]: r for r in result.rows}

    nvlink_peak = max(r["nvlink_gbps"] for r in result.rows)
    pcie_peak = max(r["pcie_gbps"] for r in result.rows)
    # ~20x degradation at 2 KB packets.
    assert nvlink_peak / rows[2]["nvlink_gbps"] > 10
    assert pcie_peak / rows[2]["pcie_gbps"] > 10
    # Saturation: 16 MB buys < 1% over 8 MB.
    assert rows[16384]["nvlink_gbps"] / rows[8192]["nvlink_gbps"] < 1.01
    # NVLink beats PCIe at every size.
    assert all(r["nvlink_gbps"] > r["pcie_gbps"] for r in result.rows)
    # Peaks approach the specs (25 and 16 GB/s).
    assert 24 < nvlink_peak <= 25
    assert 15 < pcie_peak <= 16
