"""Figure 7: adaptive routing vs the three static policies.

Paper claims: identical at small GPU counts; adaptive wins increasingly
with more GPUs (up to 5.37x / 3.45x / 2.64x over bandwidth / hop-count
/ latency).
"""

from repro.bench.figures import fig07_adaptive


def test_fig07_adaptive(run_figure):
    result = run_figure(fig07_adaptive)

    def throughput(policy, gpus):
        rows = [
            r for r in result.rows
            if r["policy"] == policy and r["gpus"] == gpus
        ]
        return rows[0]["throughput_gbps"]

    # Small configurations: every policy picks the same routes.
    for policy in ("bandwidth", "hop-count", "latency"):
        assert throughput("mg-join", 2) == throughput(policy, 2)
    # At 8 GPUs the adaptive policy beats every static policy.
    for policy in ("bandwidth", "hop-count", "latency"):
        assert throughput("mg-join", 8) > 1.25 * throughput(policy, 8)
    # The gap versus the bandwidth policy is the widest mid-range,
    # echoing the paper's 5.37x "up to" factor being against bandwidth.
    assert throughput("mg-join", 4) > 2.0 * throughput("bandwidth", 4)
