"""Figure 5a: static-policy cost across hardware configurations.

Paper claim: no static metric wins everywhere — the best policy flips
with the GPU configuration, motivating adaptive routing.
"""

from repro.bench.figures import fig05a_hw_config


def test_fig05a_hw_config(run_figure):
    result = run_figure(fig05a_hw_config)
    configs = sorted({r["config"] for r in result.rows})
    winners = {}
    spreads = {}
    for config in configs:
        rows = result.series("config", config)
        best = min(rows, key=lambda r: r["time_ms"])
        worst = max(rows, key=lambda r: r["time_ms"])
        winners[config] = best["policy"]
        spreads[config] = worst["time_ms"] / best["time_ms"]
    # The policies genuinely differ on at least one configuration...
    assert max(spreads.values()) > 1.2
    # ...and bandwidth-based routing is not the universal answer.
    assert any(winner != "bandwidth" for winner in winners.values())
