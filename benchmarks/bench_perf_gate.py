"""Perf-regression gate: the committed BENCH baseline must hold.

Collects the canonical perf metrics (skewed 8-GPU shuffle + small
MG-Join, all deterministic simulation) and compares them against the
committed ``BENCH_dgx1-8gpu.json``.  Any gated metric moving more than
10% in its bad direction fails the build; refresh the baseline with
``python -m repro perf --update`` when a change is intentional.

One metric is wall-clock rather than simulation output:
``perf.self_time_seconds``, the collection's own runtime.  It gates
hot-path performance with the generous 50% band from
``regression.METRIC_TOLERANCES`` so shared-CI noise can't flake the
build while a real slowdown of the simulator still fails it.
"""

from repro.bench import regression


def test_perf_gate_against_committed_baseline():
    result = regression.run_gate()
    print()
    print(result.render())
    assert result.ok, "perf regression against committed baseline (see table)"
