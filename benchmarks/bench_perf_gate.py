"""Perf-regression gate: the committed BENCH baselines must hold.

Collects the canonical perf metrics (skewed shuffle + small MG-Join,
all deterministic simulation) for each gated workload and compares
them against its committed baseline — ``BENCH_dgx1-8gpu.json``,
``BENCH_dgx2-16gpu.json`` and ``BENCH_multinode.json``.  Any gated
metric moving more than 10% in its bad direction fails the build;
refresh a baseline with ``python -m repro perf --workload <name>
--update`` when a change is intentional.

One metric is wall-clock rather than simulation output:
``perf.self_time_seconds``, the collection's own runtime.  It gates
hot-path performance with the generous 50% band from
``regression.METRIC_TOLERANCES`` so shared-CI noise can't flake the
build while a real slowdown of the simulator still fails it.  The
committed budgets were recorded under the batch engine
(``REPRO_ENGINE=batch``), the mode CI gates with.
"""

import pytest

from repro.bench import regression


@pytest.mark.parametrize("workload", sorted(regression.PERF_WORKLOADS))
def test_perf_gate_against_committed_baseline(workload):
    result = regression.run_gate(workload=workload)
    print()
    print(result.render())
    assert result.ok, (
        f"perf regression against committed {workload} baseline (see table)"
    )
