"""Figure 13: join throughput vs total input size on 8 GPUs.

Paper claims: MG-Join wins at every input size from 512M to 4096M
tuples — overall 10.2x over UMJ and 3.6x over DPRJ.
"""

from repro.bench.figures import fig13_input_size


def test_fig13_input_size(run_figure):
    result = run_figure(fig13_input_size)
    sizes = sorted({r["total_m_tuples"] for r in result.rows})
    assert sizes == [512, 1024, 1536, 2048, 3072, 4096]

    def curve(algorithm):
        return {
            r["total_m_tuples"]: r["throughput_btps"]
            for r in result.series("algorithm", algorithm)
        }

    mgjoin, dprj, umj = curve("mg-join"), curve("dprj"), curve("umj")
    for size in sizes:
        assert mgjoin[size] > dprj[size]
        assert mgjoin[size] > umj[size]
    # Aggregate gaps in the paper's direction.
    avg = lambda c: sum(c.values()) / len(c)
    assert avg(mgjoin) > 2.0 * avg(dprj)
    assert avg(mgjoin) > 5.0 * avg(umj)
