"""Figure 5b: static policies vs packet size and placement skew.

Paper claim: the winning static metric also flips with packet size and
data distribution; larger packets distribute faster overall.
"""

from repro.bench.figures import fig05b_packet_skew


def test_fig05b_packet_skew(run_figure):
    result = run_figure(fig05b_packet_skew)

    def time_of(packet_kb, zipf, policy):
        rows = [
            r for r in result.rows
            if r["packet_kb"] == packet_kb and r["zipf"] == zipf
            and r["policy"] == policy
        ]
        assert len(rows) == 1
        return rows[0]["time_ms"]

    # Larger packets are never slower for the same policy/skew (the
    # Figure 4 efficiency effect at the flow level).
    for zipf in (0.0, 0.5, 1.0):
        for policy in ("bandwidth", "hop-count", "latency"):
            assert time_of(2048, zipf, policy) <= time_of(128, zipf, policy) * 1.05

    # Policies disagree for at least one (packet, skew) combination.
    max_spread = 0.0
    for packet_kb in (128, 512, 2048):
        for zipf in (0.0, 0.5, 1.0):
            times = [
                time_of(packet_kb, zipf, p)
                for p in ("bandwidth", "hop-count", "latency")
            ]
            max_spread = max(max_spread, max(times) / min(times))
    assert max_spread > 1.15
