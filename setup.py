"""Legacy setup shim so editable installs work without the wheel package."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "MG-Join (SIGMOD 2021) reproduction: scalable multi-GPU hash join "
        "with adaptive multi-hop routing, on a simulated multi-GPU machine"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
